// Builds a complete cache hierarchy (L1 [, L2 [, L3]]) in front of a DRAM
// port and owns all levels. Configured from core::PlatformConfig presets
// matching Table 1 of the paper.
#pragma once

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cache.h"
#include "cpu/dram_port.h"
#include "dram/dram_system.h"

namespace ndp::cpu {

/// \brief Owns the cache levels and the memory port beneath a core.
class CacheHierarchy {
 public:
  /// `levels` is ordered L1 first. `frontside_ps` is the LLC-to-controller
  /// latency (interconnect + controller pipeline). `stats` (optional) mounts
  /// each level's counters at "<prefix>.<lowercased level name>.*".
  CacheHierarchy(sim::EventQueue* eq, sim::ClockDomain cpu_clock,
                 std::vector<CacheConfig> levels, dram::DramSystem* dram,
                 sim::Tick frontside_ps, const StatsScope& stats = {})
      : port_(dram, frontside_ps) {
    MemSink* below = &port_;
    // Build from the last level upward so each cache points at the one below.
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      std::string level_name = it->name;
      for (char& ch : level_name) ch = static_cast<char>(std::tolower(ch));
      caches_.push_back(std::make_unique<Cache>(
          eq, cpu_clock, *it, below,
          stats.Sub(level_name)));  // ndp: stats-scope(l1|l2|l3)
      below = caches_.back().get();
    }
    // caches_ is ordered LLC first; expose L1 as the top.
  }

  /// The level the core issues to.
  MemSink* top() { return caches_.empty() ? static_cast<MemSink*>(&port_)
                                          : caches_.back().get(); }

  /// Cache levels ordered L1 first.
  size_t num_levels() const { return caches_.size(); }
  Cache& level(size_t i) { return *caches_[caches_.size() - 1 - i]; }

  void InvalidateAll() {
    for (auto& c : caches_) c->InvalidateAll();
  }
  void ResetStats() {
    for (auto& c : caches_) c->ResetStats();
  }

 private:
  DramPort port_;
  std::vector<std::unique_ptr<Cache>> caches_;  ///< LLC first
};

}  // namespace ndp::cpu
