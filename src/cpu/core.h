// Out-of-order core timing model (gem5 stand-in). Approximates an OoO
// pipeline with a ROB-sized instruction window, configurable issue/retire
// width, MSHR-limited memory-level parallelism through the cache hierarchy, a
// gshare branch predictor with a redirect penalty, and single-level data
// dependences between µops. Executes lazy µop streams (UopStream), so the
// 4M-row select loop of Figure 3 never materializes its trace.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "cpu/branch_predictor.h"
#include "cpu/mem_if.h"
#include "cpu/uop.h"
#include "sim/event_queue.h"
#include "sim/ticking.h"
#include "util/stats_registry.h"
#include "util/status.h"

namespace ndp::cpu {

struct CoreConfig {
  sim::ClockDomain clock = sim::ClockDomain(1000);  ///< 1 GHz (gem5 config)
  uint32_t rob_entries = 128;
  uint32_t issue_width = 4;
  uint32_t retire_width = 4;
  uint32_t store_buffer_entries = 16;
  BranchPredictorConfig branch;
  /// Mispredict model. false (default): a mispredicted branch costs a
  /// front-end refill bubble of `mispredict_penalty_cycles` at dispatch —
  /// appropriate for short reconvergent hammocks (like a select loop's
  /// predicate test), where wrong-path and correct-path work overlap and
  /// memory-level parallelism survives the squash. true: dispatch blocks
  /// until the branch resolves (plus the penalty) — the pessimistic model
  /// where every mispredict drains the window; used as an ablation.
  bool block_on_mispredict_resolution = false;
};

struct CoreStats {
  uint64_t cycles = 0;
  uint64_t uops_retired = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t branches = 0;
  uint64_t mispredicts = 0;
  uint64_t load_reject_cycles = 0;   ///< cycles dispatch blocked on L1/MSHR
  uint64_t rob_full_cycles = 0;
  uint64_t fetch_stall_cycles = 0;   ///< cycles blocked after a mispredict
  /// Longest gap between consecutive retirements — the worst contiguous
  /// stall the workload observed (e.g. while its rank was lent to JAFAR).
  sim::Tick max_retire_gap_ps = 0;
  double Ipc() const {
    return cycles ? static_cast<double>(uops_retired) / static_cast<double>(cycles)
                  : 0.0;
  }
  /// Per-run stats as the difference against a snapshot taken before the run.
  /// Monotonic counters are subtracted; `max_retire_gap_ps` (a per-run max,
  /// reset at kernel start) is carried over from `*this`.
  CoreStats DeltaSince(const CoreStats& before) const {
    CoreStats d;
    d.cycles = cycles - before.cycles;
    d.uops_retired = uops_retired - before.uops_retired;
    d.loads = loads - before.loads;
    d.stores = stores - before.stores;
    d.branches = branches - before.branches;
    d.mispredicts = mispredicts - before.mispredicts;
    d.load_reject_cycles = load_reject_cycles - before.load_reject_cycles;
    d.rob_full_cycles = rob_full_cycles - before.rob_full_cycles;
    d.fetch_stall_cycles = fetch_stall_cycles - before.fetch_stall_cycles;
    d.max_retire_gap_ps = max_retire_gap_ps;
    return d;
  }
};

/// \brief The core model. One kernel executes at a time.
class Core : public sim::TickingComponent {
 public:
  /// `stats` (optional) mounts the core's counters (and the max-retire-gap
  /// gauge) into a registry under the scope's prefix.
  Core(sim::EventQueue* eq, CoreConfig config, MemSink* l1,
       const StatsScope& stats = {});
  ~Core() override;
  NDP_DISALLOW_COPY_AND_ASSIGN(Core);

  /// Begins executing `stream`; `on_done(tick)` fires when the last µop has
  /// retired and all stores have drained. Fails if a kernel is running.
  ndp::Status Run(UopStream* stream, std::function<void(sim::Tick)> on_done);

  bool busy() const { return stream_ != nullptr; }

  const CoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CoreStats{}; }
  const CoreConfig& core_config() const { return config_; }
  BranchPredictor& predictor() { return predictor_; }

 protected:
  bool Tick() override;

 private:
  struct RobEntry {
    Uop uop;
    uint64_t seq = 0;
    sim::Tick dispatch = 0;
    bool completion_known = false;
    sim::Tick completion = 0;
    std::optional<uint64_t> dep_seq;
  };

  /// Completion tick of a retired-or-inflight µop by sequence number, if
  /// known. Looks first in the recent-retirement ring, then in the ROB.
  std::optional<sim::Tick> CompletionOf(uint64_t seq) const;
  void ResolveCompletion(RobEntry* e);
  bool DispatchOne(sim::Tick now);
  void DrainStore(uint64_t addr);
  void RetryDrains();
  void FinishIfDone(sim::Tick now);

  static constexpr size_t kRingSize = 512;

  CoreConfig config_;
  MemSink* l1_;
  BranchPredictor predictor_;

  UopStream* stream_ = nullptr;
  std::function<void(sim::Tick)> on_done_;

  std::deque<RobEntry> rob_;
  std::optional<Uop> pending_uop_;  ///< fetched but not yet dispatched
  uint64_t next_seq_ = 1;
  sim::Tick ring_completion_[kRingSize] = {};
  uint64_t ring_seq_[kRingSize] = {};

  std::optional<uint64_t> fetch_blocked_on_seq_;
  sim::Tick fetch_stalled_until_ = 0;
  uint32_t outstanding_stores_ = 0;
  /// Stores rejected by the L1 awaiting retry; one persistent event retries
  /// them all each cycle instead of a closure per store per cycle.
  std::deque<uint64_t> pending_drains_;
  sim::MemberEventNode<Core, &Core::RetryDrains> drain_retry_{this};
  bool stream_exhausted_ = false;
  sim::Tick last_retire_tick_ = 0;

  CoreStats stats_;
};

}  // namespace ndp::cpu
