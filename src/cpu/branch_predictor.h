// Branch prediction model: a gshare-style table of 2-bit saturating counters.
// For the select loop's data-dependent branch this organically produces the
// mispredict behaviour the paper attributes to non-predicated CPU selects
// (§3.2): near-zero mispredicts at 0%/100% selectivity, worst at 50%.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ndp::cpu {

struct BranchPredictorConfig {
  uint32_t table_bits = 12;     ///< 4096 counters
  uint32_t history_bits = 8;    ///< global history length (0 = bimodal)
  uint32_t mispredict_penalty_cycles = 12;
};

/// \brief gshare predictor with 2-bit counters.
class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config)
      : config_(config),
        table_(size_t{1} << config.table_bits, 1 /* weakly not-taken */) {}

  /// Predicts, updates with the actual outcome, and reports correctness.
  bool PredictAndUpdate(uint64_t pc, bool taken) {
    size_t idx = Index(pc);
    bool predicted = table_[idx] >= 2;
    // Update 2-bit counter.
    if (taken && table_[idx] < 3) ++table_[idx];
    if (!taken && table_[idx] > 0) --table_[idx];
    // Update global history.
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               ((uint64_t{1} << config_.history_bits) - 1);
    if (predicted == taken) {
      ++correct_;
      return true;
    }
    ++mispredicts_;
    return false;
  }

  uint64_t mispredicts() const { return mispredicts_; }
  uint64_t correct() const { return correct_; }
  const BranchPredictorConfig& config() const { return config_; }

  void Reset() {
    std::fill(table_.begin(), table_.end(), 1);
    history_ = 0;
    mispredicts_ = 0;
    correct_ = 0;
  }

 private:
  size_t Index(uint64_t pc) const {
    uint64_t h = config_.history_bits ? history_ : 0;
    return static_cast<size_t>(((pc >> 2) ^ h) & (table_.size() - 1));
  }

  BranchPredictorConfig config_;
  std::vector<uint8_t> table_;
  uint64_t history_ = 0;
  uint64_t mispredicts_ = 0;
  uint64_t correct_ = 0;
};

}  // namespace ndp::cpu
