// Timing-side memory interface between pipeline, caches, and DRAM port.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace ndp::cpu {

/// \brief A sink for memory accesses with backpressure.
///
/// TryAccess returns false when the component cannot accept the request this
/// cycle (MSHRs or queues full); the caller retries on a later cycle. The
/// callback fires when the access completes (for writes it may be null).
class MemSink {
 public:
  virtual ~MemSink() = default;
  virtual bool TryAccess(uint64_t addr, bool is_write,
                         std::function<void(sim::Tick)> on_complete) = 0;
};

}  // namespace ndp::cpu
