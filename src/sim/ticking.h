// TickingComponent: base class for clocked components (memory controller,
// JAFAR engines) that self-schedule on their own clock domain and go fully
// quiescent when idle.
#pragma once

#include "sim/event_queue.h"
#include "sim/time.h"

namespace ndp::sim {

/// \brief A component clocked by a ClockDomain.
///
/// Subclasses implement Tick(), which runs once per local clock edge while the
/// component is "armed". Calling Wake() (e.g. on request arrival) arms the
/// component; Tick() returning false disarms it until the next Wake(). Each
/// edge is processed at most once even if Wake() is called repeatedly.
class TickingComponent {
 public:
  TickingComponent(EventQueue* eq, ClockDomain clock) : eq_(eq), clock_(clock) {}
  virtual ~TickingComponent() = default;
  NDP_DISALLOW_COPY_AND_ASSIGN(TickingComponent);

  /// Arms the component: it will tick on the next edge of its clock.
  void Wake() {
    if (armed_) return;
    armed_ = true;
    ScheduleNextTick();
  }

  EventQueue* event_queue() const { return eq_; }
  const ClockDomain& clock() const { return clock_; }

  /// Local cycle index of the component's clock at current sim time.
  uint64_t CurrentCycle() const { return clock_.TickToCycle(eq_->Now()); }

 protected:
  /// One local clock edge. Return true to keep ticking, false to go idle.
  virtual bool Tick() = 0;

 private:
  void ScheduleNextTick() {
    ::ndp::sim::Tick edge = clock_.NextEdgeAtOrAfter(eq_->Now());
    if (edge == last_edge_ && had_edge_) edge = clock_.NextEdgeAfter(eq_->Now());
    eq_->ScheduleAt(edge, [this, edge] {
      last_edge_ = edge;
      had_edge_ = true;
      bool again = Tick();
      if (again) {
        ScheduleNextTick();
      } else {
        armed_ = false;
      }
    });
  }

  EventQueue* eq_;
  ClockDomain clock_;
  bool armed_ = false;
  bool had_edge_ = false;
  ::ndp::sim::Tick last_edge_ = 0;
};

}  // namespace ndp::sim
