// TickingComponent: base class for clocked components (memory controller,
// JAFAR engines) that self-schedule on their own clock domain and go fully
// quiescent when idle.
#pragma once

#include "sim/event_queue.h"
#include "sim/time.h"

namespace ndp::sim {

/// \brief A component clocked by a ClockDomain.
///
/// Subclasses implement Tick(), which runs once per local clock edge while the
/// component is "armed". Calling Wake() (e.g. on request arrival) arms the
/// component; Tick() returning false disarms it until the next Wake(). Each
/// edge is processed at most once even if Wake() is called repeatedly.
///
/// The component carries one persistent intrusive EventNode, so re-arming on
/// every clock edge costs no allocation and no std::function construction —
/// the queue dispatches straight into Tick(). The node doubles as the edge
/// bookkeeping: node.when() remembers the last processed edge, which is what
/// prevents a Wake() arriving later in the same tick from double-firing that
/// edge (the seed kernel tracked this with separate last_edge_/had_edge_
/// fields).
class TickingComponent {
 public:
  TickingComponent(EventQueue* eq, ClockDomain clock)
      : eq_(eq), clock_(clock), tick_node_(this) {}
  virtual ~TickingComponent() {
    if (tick_node_.scheduled()) eq_->Cancel(&tick_node_);
  }
  NDP_DISALLOW_COPY_AND_ASSIGN(TickingComponent);

  /// Arms the component: it will tick on the next edge of its clock.
  void Wake() {
    if (tick_node_.scheduled()) return;
    ::ndp::sim::Tick edge = clock_.NextEdgeAtOrAfter(eq_->Now());
    if (edge == tick_node_.when()) edge = clock_.NextEdgeAfter(eq_->Now());
    eq_->Schedule(edge, &tick_node_);
  }

  EventQueue* event_queue() const { return eq_; }
  const ClockDomain& clock() const { return clock_; }

  /// Local cycle index of the component's clock at current sim time.
  uint64_t CurrentCycle() const { return clock_.TickToCycle(eq_->Now()); }

 protected:
  /// One local clock edge. Return true to keep ticking, false to go idle.
  virtual bool Tick() = 0;

 private:
  class TickNode final : public EventNode {
   public:
    explicit TickNode(TickingComponent* component) : component_(component) {}

   protected:
    void Fire() override { component_->OnEdge(); }

   private:
    TickingComponent* component_;
  };

  void OnEdge() {
    bool again = Tick();
    // Tick() may have re-armed the node itself (Wake() from inside); only
    // schedule the next edge if it did not.
    if (again && !tick_node_.scheduled()) {
      eq_->Schedule(clock_.NextEdgeAfter(eq_->Now()), &tick_node_);
    }
  }

  EventQueue* eq_;
  ClockDomain clock_;
  TickNode tick_node_;
};

/// \brief An EventNode that invokes a fixed member function of `T`.
///
/// A reusable, allocation-free alternative to ScheduleAt for components that
/// repeatedly schedule the same action (e.g. the memory controller's refresh
/// wake-up, the core's store-drain retry).
template <typename T, void (T::*Method)()>
class MemberEventNode final : public EventNode {
 public:
  explicit MemberEventNode(T* obj) : obj_(obj) {}

 protected:
  void Fire() override { (obj_->*Method)(); }

 private:
  T* obj_;
};

}  // namespace ndp::sim
