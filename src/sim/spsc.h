// Single-producer / single-consumer message ring for cross-partition ports.
//
// Each (src, dst) partition edge owns one SpscQueue. During an epoch the only
// producer is the worker thread executing the src partition; the only consumer
// is the barrier coordinator, which drains the edge after every worker has
// reached the epoch barrier. Pushes therefore never race pops — the atomics
// buy wait-free publication within an epoch plus well-defined visibility
// across the barrier's mutex handshake — and FIFO order per edge is exact,
// which is what makes barrier delivery deterministic.
//
// A bounded power-of-two ring carries the common case without allocation;
// bursts beyond the ring capacity spill into a producer-side overflow deque.
// Once a message has spilled, later pushes spill too (preserving FIFO) until
// the consumer has drained both, so order never interleaves between the two
// stores.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "util/macros.h"

namespace ndp::sim {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity_pow2 = 1024)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {
    NDP_CHECK_MSG((capacity_pow2 & mask_) == 0 && capacity_pow2 >= 2,
                  "SPSC capacity must be a power of two");
  }
  NDP_DISALLOW_COPY_AND_ASSIGN(SpscQueue);

  /// Producer side. Never blocks: a full ring diverts to the spill deque.
  void Push(T value) {
    size_t head = head_.load(std::memory_order_relaxed);
    size_t tail = tail_.load(std::memory_order_acquire);
    if (spilling_ || head - tail >= slots_.size()) {
      spilling_ = true;
      spill_.push_back(std::move(value));
      return;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
  }

  /// Bounded producer side, for callers that must shed rather than buffer:
  /// refuses (returns false) when the ring is full or a spill is in progress,
  /// never touching the overflow deque. The serving ingress uses this so a
  /// traffic burst hits a hard ring boundary instead of growing the heap.
  bool TryPush(T value) {
    size_t head = head_.load(std::memory_order_relaxed);
    size_t tail = tail_.load(std::memory_order_acquire);
    if (spilling_ || head - tail >= slots_.size()) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops in FIFO order (ring first, then the spill, which by
  /// construction holds only messages pushed after the ring filled). Returns
  /// false when the edge is empty.
  bool Pop(T* out) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_acquire);
    if (tail != head) {
      *out = std::move(slots_[tail & mask_]);
      tail_.store(tail + 1, std::memory_order_release);
      return true;
    }
    if (!spill_.empty()) {
      *out = std::move(spill_.front());
      spill_.pop_front();
      if (spill_.empty()) spilling_ = false;  // barrier-quiescent producer
      return true;
    }
    return false;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           spill_.empty();
  }

 private:
  std::vector<T> slots_;
  const size_t mask_;
  std::atomic<size_t> head_{0};  ///< producer cursor
  std::atomic<size_t> tail_{0};  ///< consumer cursor
  bool spilling_ = false;        ///< producer-owned; consumer resets at drain
  std::deque<T> spill_;          ///< overflow, touched only across the barrier
};

}  // namespace ndp::sim
