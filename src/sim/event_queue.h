// Discrete-event simulation kernel: a two-level hierarchical timing wheel
// over intrusive, allocation-free event nodes.
//
// Components schedule wake-ups only when they have work, so idle periods cost
// nothing to simulate (critical for the memory-controller idle-period study).
// Every experiment in this repo is gated on this loop, so the hot path is
// engineered to do zero heap allocation per event:
//
//   * EventNode is intrusive: clocked components embed one persistent node and
//     re-arm it with a couple of pointer writes and a virtual Fire() dispatch —
//     no std::function construction, no queue-element copies.
//   * Near-future events live in a two-level timing wheel: L0 slots of
//     kSlotTicks picoseconds spanning one "span", L1 slots of one span each.
//     Far-future events (DRAM refresh, ownership leases) overflow into a
//     binary heap and are promoted into the wheel as the cursor approaches.
//   * When exactly one event is pending — a lone self-ticking component, e.g.
//     JAFAR streaming a page while the CPU spin-waits — it is parked in the
//     `solo_` slot and fires without touching the wheel at all.
//   * Closure events (ScheduleAt) draw pooled nodes from a free list; they
//     allocate only while growing the pool's high-water mark.
//   * Run loops are templated on the predicate, so RunUntilTrue pays no
//     indirect std::function call per event.
//
// Execution order is deterministic: (time, schedule sequence number) is a
// total order, so FIFO tie-breaking at equal times is preserved across the
// bucket heap, both wheel levels, and the overflow heap. The seed heap kernel
// is preserved verbatim in sim/reference_queue.h as the ordering oracle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"
#include "util/macros.h"

namespace ndp::sim {

class EventQueue;

/// \brief An intrusive event: embed one in a component and (re)schedule it
/// with zero allocation. A node may be scheduled on at most one queue at a
/// time; the owner must Cancel() a still-pending node before destroying it
/// (TickingComponent does this automatically), and must not outlive the queue
/// while scheduled.
class EventNode {
 public:
  /// Sentinel for "never scheduled" (never a valid event time).
  static constexpr Tick kNever = ~Tick{0};

  EventNode() = default;
  virtual ~EventNode() = default;
  NDP_DISALLOW_COPY_AND_ASSIGN(EventNode);

  bool scheduled() const { return scheduled_; }

  /// Time of the pending occurrence while scheduled; after firing, the time
  /// it last fired; kNever if never scheduled.
  Tick when() const { return when_; }

 protected:
  /// Runs when simulated time reaches when(). The node is unscheduled before
  /// Fire() is invoked, so it may immediately reschedule itself.
  virtual void Fire() = 0;

 private:
  friend class EventQueue;
  Tick when_ = kNever;
  uint64_t seq_ = 0;
  EventNode* next_ = nullptr;  ///< slot chain / free-list link
  bool scheduled_ = false;
};

/// \brief Timing-wheel event queue with deterministic FIFO tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// L0 slot granularity in ticks (ps). Chosen so one slot holds roughly one
  /// clock edge of the fastest domain (JAFAR at 625 ps, CPU at 1000 ps).
  static constexpr Tick kSlotTicks = 1024;
  static constexpr size_t kL0Slots = 256;  ///< span = 262144 ps ≈ 262 ns
  static constexpr size_t kL1Slots = 256;  ///< horizon ≈ 67 µs (tREFI ≈ 7.8 µs)
  static constexpr Tick kSpanTicks = kSlotTicks * kL0Slots;

  EventQueue() = default;
  NDP_DISALLOW_COPY_AND_ASSIGN(EventQueue);

  /// Current simulated time. Monotonically non-decreasing.
  Tick Now() const { return now_; }

  // ndp-lint: no-alloc-begin (per-event public hot path: zero heap traffic)

  /// Schedules an intrusive node at absolute time `when` (>= Now()).
  /// Allocation-free. The node must not already be scheduled.
  void Schedule(Tick when, EventNode* node) {
    NDP_CHECK_MSG(when >= now_, "cannot schedule into the past");
    NDP_CHECK_MSG(!node->scheduled_, "event node is already scheduled");
    node->when_ = when;
    node->seq_ = next_seq_++;
    node->scheduled_ = true;
    node->next_ = nullptr;
    ++num_pending_;
    if (num_pending_ == 1) {
      solo_ = node;  // fast path: sole pending event bypasses the wheel
      return;
    }
    if (solo_ != nullptr) {
      EventNode* demoted = solo_;
      solo_ = nullptr;
      InsertIntoWheel(demoted);
    }
    InsertIntoWheel(node);
  }

  /// Unschedules a pending node (teardown path; O(pending events)).
  void Cancel(EventNode* node) {
    NDP_CHECK_MSG(node->scheduled_, "cancelling an unscheduled event node");
    node->scheduled_ = false;
    --num_pending_;
    if (solo_ == node) {
      solo_ = nullptr;
      return;
    }
    if (RemoveFromHeap(&bucket_, node) || RemoveFromHeap(&overflow_, node)) {
      return;
    }
    for (auto& slot : l0_) {
      if (UnlinkFromSlot(&slot, node)) {
        --l0_count_;
        return;
      }
    }
    for (auto& slot : l1_) {
      if (UnlinkFromSlot(&slot, node)) {
        --l1_count_;
        return;
      }
    }
    NDP_CHECK_MSG(false, "cancelled node not found in the queue");
  }

  /// Schedules `cb` to run at absolute time `when` (>= Now()). The closure is
  /// carried by a pooled node: no allocation once the pool is warm.
  void ScheduleAt(Tick when, Callback cb) {
    ClosureNode* node = AcquireClosure();
    node->cb_ = std::move(cb);
    Schedule(when, node);
  }

  /// Schedules `cb` to run `delay` ticks from now.
  void ScheduleAfter(Tick delay, Callback cb) {
    ScheduleAt(now_ + delay, std::move(cb));
  }

  bool empty() const { return num_pending_ == 0; }
  size_t size() const { return num_pending_; }

  /// Lifetime count of events executed (Step() completions) — the per-
  /// partition `sim.part<k>.events` counter in partitioned runs.
  uint64_t executed_events() const { return executed_events_; }
  /// Stable cell address for stats-registry registration.
  const uint64_t* executed_events_cell() const { return &executed_events_; }
  /// Time of the most recently executed event (0 before the first event);
  /// the epoch scheduler derives per-partition barrier stall from it.
  Tick last_executed_ps() const { return last_executed_ps_; }

  /// Partition identity when this queue is one wheel of a PartitionSet
  /// (kNoPartition for a standalone queue, e.g. the single-threaded oracle).
  static constexpr uint32_t kNoPartition = ~uint32_t{0};
  uint32_t partition_id() const { return partition_id_; }
  void set_partition_id(uint32_t id) { partition_id_ = id; }

  /// Time of the earliest pending event; queue must be non-empty. (May migrate
  /// events between wheel levels to locate the head, hence non-const.)
  Tick NextEventTime() {
    EventNode* head = PeekEarliest();
    NDP_CHECK(head != nullptr);
    return head->when_;
  }

  /// Runs a single event. Returns false if the queue is empty.
  bool Step() {
    EventNode* node = PopEarliest();
    if (node == nullptr) return false;
    NDP_CHECK(node->when_ >= now_);
    now_ = node->when_;
    ++executed_events_;
    last_executed_ps_ = now_;
    node->Fire();
    return true;
  }

  /// Runs events until the queue is empty. Returns events executed.
  uint64_t RunUntilEmpty() {
    uint64_t n = 0;
    while (Step()) ++n;
    return n;
  }

  /// Runs all events with time <= `until`, then advances Now() to `until`.
  uint64_t RunUntil(Tick until) {
    uint64_t n = 0;
    for (EventNode* head = PeekEarliest();
         head != nullptr && head->when_ <= until; head = PeekEarliest()) {
      Step();
      ++n;
    }
    if (now_ < until) now_ = until;
    return n;
  }

  /// Runs until `pred()` is true or the queue empties. Returns whether the
  /// predicate was satisfied. Templated so the per-event predicate check is a
  /// direct (inlinable) call, not a std::function dispatch.
  template <typename Pred>
  bool RunUntilTrue(Pred&& pred) {
    while (!pred()) {
      if (!Step()) return pred();
    }
    return true;
  }

  // ndp-lint: no-alloc-end

 private:
  /// Pooled carrier for std::function events. Returned to the free list
  /// before the closure runs, so a closure that reschedules reuses its node.
  class ClosureNode final : public EventNode {
   public:
    explicit ClosureNode(EventQueue* owner) : owner_(owner) {}

   protected:
    void Fire() override {
      Callback cb = std::move(cb_);
      cb_ = nullptr;
      owner_->ReleaseClosure(this);
      cb();
    }

   private:
    friend class EventQueue;
    EventQueue* owner_;
    Callback cb_;
  };

  /// Heap comparator: top() is the earliest (when, seq) — a total order, so
  /// pop sequence is deterministic regardless of internal heap layout.
  struct NodeLater {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->when_ != b->when_) return a->when_ > b->when_;
      return a->seq_ > b->seq_;
    }
  };

  uint64_t Quantum(Tick when) const { return when / kSlotTicks; }

  // ndp-lint: no-alloc-begin (wheel internals; only PushHeap/AcquireClosure
  // below the end marker may touch the heap, growing amortized capacity)

  /// Files a node into bucket / L0 / L1 / overflow relative to the cursor.
  void InsertIntoWheel(EventNode* node) {
    const uint64_t q = Quantum(node->when_);
    // The cursor may sit ahead of Now() (RunUntil peeked at a far-future
    // head); anything at or before it belongs in the bucket heap.
    if (q <= cur_quantum_) {
      PushHeap(&bucket_, node);
      return;
    }
    const uint64_t span = q / kL0Slots;
    if (span == cur_span_) {
      node->next_ = l0_[q % kL0Slots];
      l0_[q % kL0Slots] = node;
      ++l0_count_;
    } else if (span - cur_span_ < kL1Slots) {
      node->next_ = l1_[span % kL1Slots];
      l1_[span % kL1Slots] = node;
      ++l1_count_;
    } else {
      PushHeap(&overflow_, node);
    }
  }

  /// Moves the cursor to the first quantum of span `s`: scatters that span's
  /// L1 slot into L0 and promotes overflow events under the new horizon.
  void EnterSpan(uint64_t s) {
    NDP_CHECK(s > cur_span_);
    cur_span_ = s;
    cur_quantum_ = s * kL0Slots - 1;  // scan resumes at the span's first slot
    EventNode* list = l1_[s % kL1Slots];
    l1_[s % kL1Slots] = nullptr;
    while (list != nullptr) {
      EventNode* n = list;
      list = list->next_;
      --l1_count_;
      const uint64_t q = Quantum(n->when_);
      n->next_ = l0_[q % kL0Slots];
      l0_[q % kL0Slots] = n;
      ++l0_count_;
    }
    const Tick horizon = (s + kL1Slots) * kSpanTicks;
    while (!overflow_.empty() && overflow_.front()->when_ < horizon) {
      std::pop_heap(overflow_.begin(), overflow_.end(), NodeLater{});
      EventNode* n = overflow_.back();
      overflow_.pop_back();
      const uint64_t q = Quantum(n->when_);
      if (q / kL0Slots == s) {
        n->next_ = l0_[q % kL0Slots];
        l0_[q % kL0Slots] = n;
        ++l0_count_;
      } else {
        n->next_ = l1_[(q / kL0Slots) % kL1Slots];
        l1_[(q / kL0Slots) % kL1Slots] = n;
        ++l1_count_;
      }
    }
  }

  /// Advances the cursor to the next non-empty quantum and drains that slot
  /// into the bucket heap. Pre: bucket empty, no solo, num_pending_ > 0.
  void AdvanceCursor() {
    while (bucket_.empty()) {
      if (l0_count_ > 0) {
        // All L0 entries sit in the current span strictly after the cursor.
        const uint64_t span_end = (cur_span_ + 1) * kL0Slots;
        for (uint64_t q = cur_quantum_ + 1; q < span_end; ++q) {
          EventNode*& slot = l0_[q % kL0Slots];
          if (slot != nullptr) {
            cur_quantum_ = q;
            while (slot != nullptr) {
              EventNode* n = slot;
              slot = n->next_;
              --l0_count_;
              PushHeap(&bucket_, n);
            }
            break;
          }
        }
        NDP_CHECK(!bucket_.empty());
        return;
      }
      if (l1_count_ > 0) {
        // L1 never holds a span the cursor has passed, so scanning forward
        // from the current span finds the earliest occupied one.
        for (uint64_t s = cur_span_ + 1;; ++s) {
          NDP_CHECK(s < cur_span_ + kL1Slots);
          if (l1_[s % kL1Slots] != nullptr) {
            EnterSpan(s);
            break;
          }
        }
        continue;
      }
      NDP_CHECK(!overflow_.empty());
      EnterSpan(Quantum(overflow_.front()->when_) / kL0Slots);
    }
  }

  /// Earliest pending node without unscheduling it; nullptr if empty.
  EventNode* PeekEarliest() {
    if (solo_ != nullptr) return solo_;
    if (num_pending_ == 0) return nullptr;
    if (bucket_.empty()) AdvanceCursor();
    return bucket_.front();
  }

  EventNode* PopEarliest() {
    EventNode* node;
    if (solo_ != nullptr) {
      node = solo_;
      solo_ = nullptr;
    } else if (num_pending_ == 0) {
      return nullptr;
    } else {
      if (bucket_.empty()) AdvanceCursor();
      std::pop_heap(bucket_.begin(), bucket_.end(), NodeLater{});
      node = bucket_.back();
      bucket_.pop_back();
    }
    node->scheduled_ = false;
    --num_pending_;
    return node;
  }

  // ndp-lint: no-alloc-end

  static void PushHeap(std::vector<EventNode*>* heap, EventNode* node) {
    heap->push_back(node);
    std::push_heap(heap->begin(), heap->end(), NodeLater{});
  }

  static bool RemoveFromHeap(std::vector<EventNode*>* heap, EventNode* node) {
    auto it = std::find(heap->begin(), heap->end(), node);
    if (it == heap->end()) return false;
    heap->erase(it);
    std::make_heap(heap->begin(), heap->end(), NodeLater{});
    return true;
  }

  static bool UnlinkFromSlot(EventNode** slot, EventNode* node) {
    for (EventNode** p = slot; *p != nullptr; p = &(*p)->next_) {
      if (*p == node) {
        *p = node->next_;
        return true;
      }
    }
    return false;
  }

  ClosureNode* AcquireClosure() {
    if (free_closures_ != nullptr) {
      ClosureNode* n = free_closures_;
      free_closures_ = static_cast<ClosureNode*>(n->next_);
      return n;
    }
    closure_arena_.push_back(std::make_unique<ClosureNode>(this));
    return closure_arena_.back().get();
  }

  void ReleaseClosure(ClosureNode* node) {
    node->next_ = free_closures_;
    free_closures_ = node;
  }

  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  size_t num_pending_ = 0;
  uint64_t executed_events_ = 0;
  Tick last_executed_ps_ = 0;
  uint32_t partition_id_ = kNoPartition;

  EventNode* solo_ = nullptr;  ///< sole pending event (bypasses the wheel)

  uint64_t cur_quantum_ = 0;          ///< drain cursor, in kSlotTicks units
  uint64_t cur_span_ = 0;             ///< span the cursor is serving
  std::vector<EventNode*> bucket_;    ///< (when, seq) heap: cursor's quantum
  EventNode* l0_[kL0Slots] = {};      ///< unsorted chains, current span
  size_t l0_count_ = 0;
  EventNode* l1_[kL1Slots] = {};      ///< unsorted chains, one span per slot
  size_t l1_count_ = 0;
  std::vector<EventNode*> overflow_;  ///< (when, seq) heap beyond the horizon

  std::vector<std::unique_ptr<ClosureNode>> closure_arena_;
  ClosureNode* free_closures_ = nullptr;
};

}  // namespace ndp::sim
