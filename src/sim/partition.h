// Parallel-in-time simulation core: a PartitionSet splits one simulated
// system across K partitions, each owning its own two-level timing wheel
// (EventQueue), and advances them together with conservative PDES epoch
// barriers.
//
// Protocol (classic synchronous conservative windowing):
//
//   1. Drain every cross-partition port, delivering queued messages onto
//      their destination wheels in a fixed order (dst-major, src-minor, FIFO
//      per edge) — schedule sequence numbers, and therefore tie-breaking, are
//      identical no matter how many threads ran the previous epoch.
//   2. Let e = min over partitions of the next pending event time. The epoch
//      window is [*, e + L) where L is the lookahead: the minimum simulated
//      latency of any cross-partition interaction (one host<->device hop).
//   3. Every partition runs independently to the window end (RunUntil
//      (e + L - 1)), on its own thread when NDP_SIM_THREADS > 1. A message
//      sent at time tau inside the window arrives at tau + L >= e + L, i.e.
//      strictly after the window — so no partition can receive an event in
//      its own past, and intra-window execution needs no synchronization.
//   4. Barrier; goto 1.
//
// Determinism: partition-local execution is single-threaded and each wheel's
// (time, seq) order is total; cross-partition effects exist only as port
// messages whose delivery order is fixed by step 1. Thread count changes
// which wall-clock core runs a partition, never what it computes — the
// byte-identical-dump tests in tests/integration sweep NDP_SIM_THREADS to
// pin this.
//
// Why conservative (not optimistic): every component in this repo mutates
// shared functional state (backing store bytes, stats cells) in place, so
// Time-Warp-style rollback would need full state checkpointing for a kernel
// whose events are ~10ns apart. The DDR3 command latency gives a natural
// nonzero lookahead, which is the one precondition conservative windows need.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.h"
#include "sim/spsc.h"
#include "util/stats_registry.h"

namespace ndp::sim {

/// \brief K timing wheels + per-edge SPSC ports + the epoch scheduler.
class PartitionSet {
 public:
  /// `lookahead_ps` is the minimum cross-partition latency (every Send is
  /// delayed by at least this much); `cycle_ps` converts the barrier-stall
  /// accounting from picoseconds to the reporting clock (DDR3 bus cycles).
  /// Worker-thread count comes from NDP_SIM_THREADS (unset, empty, or <= 1
  /// means serial execution on the caller's thread; the schedule is
  /// identical either way).
  PartitionSet(uint32_t num_partitions, Tick lookahead_ps, Tick cycle_ps);
  ~PartitionSet();
  NDP_DISALLOW_COPY_AND_ASSIGN(PartitionSet);

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(queues_.size());
  }
  EventQueue& queue(uint32_t p) { return *queues_[p]; }
  Tick lookahead_ps() const { return lookahead_; }
  /// Worker threads actually running epochs (1 = serial on the caller).
  uint32_t num_threads() const { return num_threads_; }
  uint64_t epochs() const { return epochs_; }

  /// Global simulated time: the barrier front every partition has reached.
  Tick Now() const { return queues_[0]->Now(); }

  /// Cross-partition send: runs `fn` on partition `dst` at
  /// src.Now() + lookahead + extra_delay_ps. The only legal way to affect
  /// another partition from inside an epoch (ndp-lint: cross-partition-
  /// schedule enforces this for code outside src/sim). May also be called
  /// between runs (at barrier time) from the coordinating thread.
  void Send(uint32_t src, uint32_t dst, Tick extra_delay_ps,
            std::function<void()> fn);

  /// Runs epochs until every event at time <= `until` has executed, then
  /// advances all partitions to `until`.
  void RunUntil(Tick until);

  /// Runs epochs until `pred()` holds (evaluated only at barriers, after the
  /// port drain) or every wheel and port is empty. Returns whether the
  /// predicate was satisfied.
  template <typename Pred>
  bool RunUntilTrue(Pred&& pred) {
    for (;;) {
      DrainPorts();
      if (pred()) return true;
      Tick e = MinNextEventTime();
      if (e == EventNode::kNever) return pred();
      RunEpoch(e + lookahead_);
    }
  }

  /// Mounts `sim.epochs`, `sim.part<k>.events`, and
  /// `sim.part<k>.barrier_stall_cycles` under `scope`.
  void RegisterStats(const StatsScope& scope) const;

 private:
  struct Message {
    Tick deliver_at = 0;
    std::function<void()> fn;
  };

  /// Earliest pending event across all partitions; kNever when idle.
  Tick MinNextEventTime();
  /// Delivers all ported messages in (dst, src, FIFO) order.
  void DrainPorts();
  /// One conservative window: every partition runs to `t_end` - 1, in
  /// parallel when the pool is active, then the caller re-drains at the top
  /// of the loop. Increments epochs_.
  void RunEpoch(Tick t_end);
  /// Partition-local slice of an epoch; runs on the owning worker.
  void RunPartitionEpoch(uint32_t p, Tick t_end);

  void WorkerMain(uint32_t worker);

  SpscQueue<Message>& edge(uint32_t src, uint32_t dst) {
    return *edges_[static_cast<size_t>(src) * queues_.size() + dst];
  }

  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<std::unique_ptr<SpscQueue<Message>>> edges_;  ///< K x K, row=src
  Tick lookahead_;
  Tick cycle_ps_;
  uint64_t epochs_ = 0;
  /// Per-partition simulated time spent waiting at the window end with no
  /// local work (exposed as barrier_stall_cycles). Each slot is written only
  /// by the worker that owns the partition during an epoch.
  std::vector<Tick> stall_ps_;

  // Worker pool (empty when NDP_SIM_THREADS <= 1). Static partition
  // assignment: worker w runs partitions {p : p % num_threads_ == w}, so the
  // mapping is a pure function of the configuration, never of timing.
  uint32_t num_threads_ = 1;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;   ///< bumped per epoch  // ndp: guarded-by(mu_)
  Tick epoch_end_ = 0;        ///< epoch's t_end     // ndp: guarded-by(mu_)
  uint32_t workers_left_ = 0; ///< barrier countdown // ndp: guarded-by(mu_)
  bool shutdown_ = false;     // ndp: guarded-by(mu_)
};

}  // namespace ndp::sim
