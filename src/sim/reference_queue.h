// The seed event kernel — std::priority_queue of std::function events —
// preserved verbatim for two purposes:
//
//   1. Ordering oracle: the timing-wheel kernel (sim/event_queue.h) must
//      execute any schedule in exactly the order this queue does; the
//      property test in tests/sim/wheel_property_test.cc checks that.
//   2. Perf baseline: bench/microbench measures events/sec on both kernels
//      and records the ratio in BENCH_sim.json, so the speedup claim stays
//      verifiable across PRs.
//
// Do not use this in simulator code; it is quadratically slower in practice
// (one closure construction plus two O(log n) 48-byte heap sifts per event).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"
#include "util/macros.h"

namespace ndp::sim {

/// \brief Priority queue of timed events with deterministic FIFO tie-breaking.
class ReferenceEventQueue {
 public:
  using Callback = std::function<void()>;

  ReferenceEventQueue() = default;
  NDP_DISALLOW_COPY_AND_ASSIGN(ReferenceEventQueue);

  /// Current simulated time. Monotonically non-decreasing.
  Tick Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when` (>= Now()).
  void ScheduleAt(Tick when, Callback cb) {
    NDP_CHECK_MSG(when >= now_, "cannot schedule into the past");
    heap_.push(Event{when, next_seq_++, std::move(cb)});
  }

  /// Schedules `cb` to run `delay` ticks from now.
  void ScheduleAfter(Tick delay, Callback cb) {
    ScheduleAt(now_ + delay, std::move(cb));
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Runs a single event. Returns false if the queue is empty.
  bool Step() {
    if (heap_.empty()) return false;
    // Moving out of a priority_queue top requires const_cast; the element is
    // popped immediately after so the broken ordering is never observed.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    NDP_CHECK(ev.when >= now_);
    now_ = ev.when;
    ev.cb();
    return true;
  }

  /// Runs events until the queue is empty. Returns events executed.
  uint64_t RunUntilEmpty() {
    uint64_t n = 0;
    while (Step()) ++n;
    return n;
  }

  /// Runs all events with time <= `until`, then advances Now() to `until`.
  uint64_t RunUntil(Tick until) {
    uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
      Step();
      ++n;
    }
    if (now_ < until) now_ = until;
    return n;
  }

 private:
  struct Event {
    Tick when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace ndp::sim
