#include "sim/partition.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/macros.h"

namespace ndp::sim {

namespace {

/// NDP_SIM_THREADS, strictly parsed; unset/empty -> 1 (serial). A malformed
/// value dies loudly rather than silently running a different experiment.
uint32_t ThreadsFromEnv() {
  const char* raw = std::getenv("NDP_SIM_THREADS");
  if (raw == nullptr || *raw == '\0') return 1;
  errno = 0;
  char* end = nullptr;
  unsigned long v = std::strtoul(raw, &end, 10);
  NDP_CHECK_MSG(*end == '\0' && errno != ERANGE && v >= 1 && v <= 1024,
                "NDP_SIM_THREADS must be an integer in [1, 1024]");
  return static_cast<uint32_t>(v);
}

}  // namespace

PartitionSet::PartitionSet(uint32_t num_partitions, Tick lookahead_ps,
                           Tick cycle_ps)
    : lookahead_(lookahead_ps), cycle_ps_(cycle_ps) {
  NDP_CHECK_MSG(num_partitions >= 1, "need at least one partition");
  NDP_CHECK_MSG(lookahead_ps >= 1,
                "conservative epochs need a nonzero lookahead");
  NDP_CHECK(cycle_ps >= 1);
  queues_.reserve(num_partitions);
  stall_ps_.assign(num_partitions, 0);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    queues_.push_back(std::make_unique<EventQueue>());
    queues_.back()->set_partition_id(p);
  }
  edges_.reserve(static_cast<size_t>(num_partitions) * num_partitions);
  for (size_t i = 0; i < static_cast<size_t>(num_partitions) * num_partitions;
       ++i) {
    edges_.push_back(std::make_unique<SpscQueue<Message>>());
  }
  // More workers than partitions would only idle; the pool is persistent for
  // the PartitionSet's lifetime (epochs are far too short to amortize a
  // spawn per window).
  num_threads_ = std::min(ThreadsFromEnv(), num_partitions);
  if (num_threads_ > 1) {
    threads_.reserve(num_threads_);
    for (uint32_t w = 0; w < num_threads_; ++w) {
      threads_.emplace_back([this, w] { WorkerMain(w); });
    }
  }
}

PartitionSet::~PartitionSet() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }
}

void PartitionSet::Send(uint32_t src, uint32_t dst, Tick extra_delay_ps,
                        std::function<void()> fn) {
  NDP_CHECK(src < queues_.size() && dst < queues_.size());
  Message m;
  m.deliver_at = queues_[src]->Now() + lookahead_ + extra_delay_ps;
  m.fn = std::move(fn);
  edge(src, dst).Push(std::move(m));
}

Tick PartitionSet::MinNextEventTime() {
  Tick e = EventNode::kNever;
  for (auto& q : queues_) {
    if (!q->empty()) e = std::min(e, q->NextEventTime());
  }
  return e;
}

void PartitionSet::DrainPorts() {
  const uint32_t k = num_partitions();
  for (uint32_t dst = 0; dst < k; ++dst) {
    EventQueue& q = *queues_[dst];
    for (uint32_t src = 0; src < k; ++src) {
      Message m;
      while (edge(src, dst).Pop(&m)) {
        // The lookahead guarantees in-window sends land beyond the window:
        // tau + L >= e + L > t_end - 1 >= dst.Now(). Anything else is a
        // protocol violation, not a scheduling decision to paper over.
        NDP_CHECK_MSG(m.deliver_at >= q.Now(),
                      "cross-partition message would arrive in the past");
        q.ScheduleAt(m.deliver_at, std::move(m.fn));
      }
    }
  }
}

void PartitionSet::RunPartitionEpoch(uint32_t p, Tick t_end) {
  EventQueue& q = *queues_[p];
  const Tick start = q.Now();
  q.RunUntil(t_end - 1);
  // Simulated time the partition sat idle at the window tail; a partition
  // whose events end early (or that had none) stalls until the barrier.
  const Tick last = q.last_executed_ps();
  const Tick busy_until = last > start ? last : start;
  stall_ps_[p] += (t_end - 1) - busy_until;
}

void PartitionSet::RunEpoch(Tick t_end) {
  ++epochs_;
  if (threads_.empty()) {
    for (uint32_t p = 0; p < num_partitions(); ++p) {
      RunPartitionEpoch(p, t_end);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_end_ = t_end;
    workers_left_ = num_threads_;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return workers_left_ == 0; });
}

void PartitionSet::WorkerMain(uint32_t worker) {
  uint64_t seen = 0;
  for (;;) {
    Tick t_end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      t_end = epoch_end_;
    }
    for (uint32_t p = worker; p < num_partitions(); p += num_threads_) {
      RunPartitionEpoch(p, t_end);
    }
    bool last;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --workers_left_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

void PartitionSet::RunUntil(Tick until) {
  for (;;) {
    DrainPorts();
    Tick e = MinNextEventTime();
    if (e == EventNode::kNever || e > until) break;
    // The final window is clamped so no event beyond `until` runs.
    RunEpoch(std::min(e + lookahead_, until + 1));
  }
  for (auto& q : queues_) {
    if (q->Now() < until) q->RunUntil(until);  // no events left; advances time
  }
}

void PartitionSet::RegisterStats(const StatsScope& scope) const {
  scope.Counter("epochs", &epochs_);
  for (uint32_t p = 0; p < num_partitions(); ++p) {
    StatsScope part = scope.Sub("part" + std::to_string(p));
    part.Counter("events", queues_[p]->executed_events_cell());
    const Tick* stall = &stall_ps_[p];
    const Tick cycle = cycle_ps_;
    part.Counter("barrier_stall_cycles",
                 std::function<uint64_t()>([stall, cycle] {
                   return *stall / cycle;
                 }));
  }
}

}  // namespace ndp::sim
