// Global simulated time base. All components share one timeline measured in
// integer picoseconds so that clock domains with non-commensurate frequencies
// (CPU 1 GHz / 2 GHz, DDR3 bus 800 MHz, DRAM array 200 MHz, JAFAR 2x bus)
// convert exactly without floating-point drift.
#pragma once

#include <cstdint>

#include "util/macros.h"

namespace ndp::sim {

/// Simulated time in picoseconds.
using Tick = uint64_t;

constexpr Tick kPsPerNs = 1000;

/// \brief A clock domain: converts between local cycles and global ticks.
///
/// Edges are at multiples of period_ps(); cycle c begins at c * period_ps().
class ClockDomain {
 public:
  ClockDomain() : period_ps_(1000) {}
  explicit ClockDomain(Tick period_ps) : period_ps_(period_ps) {
    NDP_CHECK(period_ps > 0);
  }

  /// Constructs from a frequency in MHz (must divide 1e6 ps exactly... it need
  /// not: the period is rounded to the nearest picosecond, < 0.0001% error for
  /// all frequencies used in this project).
  static ClockDomain FromMHz(double mhz) {
    NDP_CHECK(mhz > 0);
    return ClockDomain(static_cast<Tick>(1e6 / mhz + 0.5));
  }

  Tick period_ps() const { return period_ps_; }
  double frequency_ghz() const { return 1000.0 / static_cast<double>(period_ps_); }

  /// Global tick at which local cycle `cycle` begins.
  Tick CycleToTick(uint64_t cycle) const { return cycle * period_ps_; }

  /// Local cycle containing global tick `t` (edge at t belongs to that cycle).
  uint64_t TickToCycle(Tick t) const { return t / period_ps_; }

  /// First clock edge at or after `t`.
  Tick NextEdgeAtOrAfter(Tick t) const {
    return ((t + period_ps_ - 1) / period_ps_) * period_ps_;
  }

  /// First clock edge strictly after `t`.
  Tick NextEdgeAfter(Tick t) const { return (t / period_ps_ + 1) * period_ps_; }

 private:
  Tick period_ps_;
};

}  // namespace ndp::sim
