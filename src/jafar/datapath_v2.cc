// Generation v2_bank_level: Membrane-style bank-level filtering. A small
// comparator sits in every bank's peripheral logic; the device ARMs a set of
// banks, streams each bank's rows with ordinary RD commands whose bursts are
// consumed *inside* the bank (no IO-bus data transfer), and collects one
// match bit per element in a per-bank accumulator that drains over a narrow
// per-rank result bus when the bank is precharged.
//
// Sequencing: the scan range is contiguous within the rank and the address
// layout walks a full DRAM row before switching banks, so consecutive
// row-sized segments land on distinct banks. The sequencer takes up to
// banks_per_rank consecutive segments per *wave*, runs one command chain per
// segment concurrently (ARM -> ACT -> RD... -> PRE(drain) -> DISARM), and at
// the wave barrier evaluates the covered rows functionally and appends their
// bits to the shared output buffer — all banks are precharged and disarmed at
// a barrier, so bitmap flush writes are always safe there.
//
// Refresh: the host controller refuses to refresh a rank with armed banks
// (the comparator sits on the sense-amp path), so the device checks the
// refresh steal-back signal only *between* waves and runs every mid-chain
// command with defer_to_refresh=false. A wave is bounded by one row's worth
// of reads per bank (~1.3 us), well inside the controller's postponement
// headroom, so refresh is delayed by at most one wave, never livelocked.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "jafar/datapath_impl.h"
#include "jafar/device.h"  // DeviceStats definition (shell internals stay private)
#include "sim/event_queue.h"
#include "util/macros.h"

namespace ndp::jafar {

namespace {

constexpr uint32_t kBurstBytes = 64;

class V2BankLevelDatapath final : public DatapathModel {
 public:
  using DatapathModel::DatapathModel;

  DeviceGeneration generation() const override {
    return DeviceGeneration::kV2BankLevel;
  }

  void Attach(const StatsScope& stats) override {
    NDP_CHECK_MSG(config().bank_filter.valid(),
                  "v2_bank_level requires accel-derived bank filter timing "
                  "(build the DeviceConfig with DeviceConfig::DeriveBank)");
    NDP_CHECK(config().bank_words_per_cycle > 0);
    // The config lives by value inside the Device shell, so the timing
    // block's address is stable for the device's lifetime.
    channel().SetBankFilterTiming(rank_index(), &config().bank_filter);
    stats.Counter("filter_bursts", &filter_bursts_);
    stats.Counter("filter_segments", &filter_segments_);
    stats.Counter("bank_waves", &bank_waves_);
  }

  void BeginScan() override;

  void OnJobTeardown() override {
    // Force-release DRAM-side filter state: a failed or aborted job may die
    // with banks still armed (and bits pending), which would wedge host
    // refresh forever. Idempotent; schedules nothing.
    channel().ResetBankFilters(rank_index());
    wave_pending_ = 0;
  }

 private:
  struct Segment {
    uint64_t start = 0;  // first byte of the segment (within the scan range)
    uint64_t end = 0;    // one past the last byte
  };

  uint64_t RowSizeBytes() { return dram().mapper().organization().row_size_bytes; }

  void StartWave();
  void RunSegment(const Segment& seg);
  void ArmSegment(dram::DramLocation loc, uint64_t first_burst,
                  uint32_t nbursts);
  void Reactivate(dram::DramLocation loc, uint64_t first_burst, uint32_t idx,
                  uint32_t nbursts);
  void ArmOrReopen(dram::DramLocation loc, uint64_t first_burst, uint32_t idx,
                   uint32_t nbursts);
  void ReadNext(dram::DramLocation loc, uint64_t first_burst, uint32_t idx,
                uint32_t nbursts);
  void DrainSegment(dram::DramLocation loc);
  void OnSegmentDone();
  bool EvalRow(uint64_t r) const;
  void EvalRange(uint64_t last);

  // Scan state staged by BeginScan (one job at a time, like the shell).
  uint64_t base_ = 0;          ///< first byte of the scanned region
  uint64_t stride_bytes_ = 0;  ///< bytes per row element (elem or tuple)
  uint64_t total_rows_ = 0;
  uint64_t scan_end_ = 0;        ///< base_ + total_rows_ * stride_bytes_
  uint64_t next_seg_start_ = 0;  ///< first byte not yet assigned to a wave
  uint64_t wave_covered_end_ = 0;  ///< bytes filtered once this wave drains
  uint32_t wave_pending_ = 0;      ///< segments still in flight in this wave

  // Generation-specific lifetime counters (registered in Attach, so a
  // v1 device's stats dump carries no trace of them).
  uint64_t filter_bursts_ = 0;    ///< bursts consumed by in-bank comparators
  uint64_t filter_segments_ = 0;  ///< ARM..DISARM chains completed
  uint64_t bank_waves_ = 0;       ///< wave barriers crossed
};

void V2BankLevelDatapath::BeginScan() {
  const bool is_rs = is_rowstore();
  const bool probe = is_probe();
  base_ = is_rs      ? rowstore_job().tuple_base
          : probe    ? probe_job().col_base
                     : select_job().col_base;
  stride_bytes_ = is_rs ? rowstore_job().tuple_bytes : config().elem_bytes;
  total_rows_ = is_rs      ? rowstore_job().num_tuples
                : probe    ? probe_job().num_rows
                           : select_job().num_rows;
  scan_end_ = base_ + total_rows_ * stride_bytes_;
  next_seg_start_ = base_;
  wave_covered_end_ = base_;
  wave_pending_ = 0;
  if (total_rows_ == 0 || next_seg_start_ >= scan_end_) {
    FlushBitmap([this] { FinishJob(); });
    return;
  }
  StartWave();
}

void V2BankLevelDatapath::StartWave() {
  // Between-waves refresh check: every bank is precharged and disarmed here,
  // so this is the one place the device can politely yield the rank.
  if (RefreshClaims()) {
    ++stats().refresh_backoffs;
    ScheduleAfterGuarded(BusCycles(8), [this] { StartWave(); });
    return;
  }
  const uint64_t row_bytes = RowSizeBytes();
  const uint32_t max_lanes = dram().mapper().organization().banks_per_rank;
  std::vector<Segment> segs;
  uint64_t pos = next_seg_start_;
  uint64_t bank_mask = 0;
  while (segs.size() < max_lanes && pos < scan_end_) {
    uint64_t seg_end = std::min((pos / row_bytes + 1) * row_bytes, scan_end_);
    uint32_t bank = dram().mapper().Decode(pos).ValueOrDie().bank;
    // Consecutive row segments round-robin the banks, so <= banks_per_rank of
    // them are always pairwise distinct; guard the invariant anyway.
    NDP_CHECK_MSG((bank_mask & (uint64_t{1} << bank)) == 0,
                  "wave would arm the same bank twice");
    bank_mask |= uint64_t{1} << bank;
    segs.push_back(Segment{pos, seg_end});
    pos = seg_end;
  }
  NDP_CHECK(!segs.empty());
  ++bank_waves_;
  // Commit the wave extent before launching anything: chains may complete
  // through synchronous IssueWhenReady fast paths.
  wave_pending_ = static_cast<uint32_t>(segs.size());
  next_seg_start_ = pos;
  wave_covered_end_ = pos;
  for (const Segment& seg : segs) RunSegment(seg);
}

void V2BankLevelDatapath::RunSegment(const Segment& seg) {
  const uint64_t first_burst = seg.start - seg.start % kBurstBytes;
  uint64_t last_burst = seg.end - 1;
  last_burst -= last_burst % kBurstBytes;
  const uint32_t nbursts =
      static_cast<uint32_t>((last_burst - first_burst) / kBurstBytes + 1);
  dram::DramLocation loc = dram().mapper().Decode(first_burst).ValueOrDie();
  ArmSegment(loc, first_burst, nbursts);
}

void V2BankLevelDatapath::ArmSegment(dram::DramLocation loc,
                                     uint64_t first_burst, uint32_t nbursts) {
  // ARM requires a closed bank (the comparator taps the sense amps across a
  // fresh activation). A leftover open row — host traffic in polite mode —
  // gets precharged first.
  if (channel().rank(rank_index()).bank(loc.bank).has_open_row()) {
    dram::Command pre{dram::CommandType::kPrecharge, rank_index(), loc.bank};
    IssueWhenReady(
        pre,
        [this, loc, first_burst, nbursts](sim::Tick) {
          ArmSegment(loc, first_burst, nbursts);
        },
        /*on_stale=*/nullptr, /*defer_to_refresh=*/false);
    return;
  }
  dram::Command arm{dram::CommandType::kBankArm, rank_index(), loc.bank};
  IssueWhenReady(
      arm,
      [this, loc, first_burst, nbursts](sim::Tick) {
        Reactivate(loc, first_burst, /*idx=*/0, nbursts);
      },
      /*on_stale=*/nullptr, /*defer_to_refresh=*/false);
}

void V2BankLevelDatapath::Reactivate(dram::DramLocation loc,
                                     uint64_t first_burst, uint32_t idx,
                                     uint32_t nbursts) {
  dram::Command act{dram::CommandType::kActivate, rank_index(), loc.bank,
                    loc.row};
  ++stats().activates;
  IssueWhenReady(
      act,
      [this, loc, first_burst, idx, nbursts](sim::Tick) {
        ReadNext(loc, first_burst, idx, nbursts);
      },
      /*on_stale=*/
      [this, loc, first_burst, idx, nbursts] {
        ArmOrReopen(loc, first_burst, idx, nbursts);
      },
      /*defer_to_refresh=*/false);
}

// A third party opened the bank between scheduling and issue (polite-mode
// host traffic): close it and try the activation again. The forced PRE may
// drain accumulated bits early; that splits one drain into two but changes
// nothing functionally — the accumulator is drained bitwise-incrementally.
void V2BankLevelDatapath::ArmOrReopen(dram::DramLocation loc,
                                      uint64_t first_burst, uint32_t idx,
                                      uint32_t nbursts) {
  dram::Command pre{dram::CommandType::kPrecharge, rank_index(), loc.bank};
  IssueWhenReady(
      pre,
      [this, loc, first_burst, idx, nbursts](sim::Tick) {
        Reactivate(loc, first_burst, idx, nbursts);
      },
      /*on_stale=*/nullptr, /*defer_to_refresh=*/false);
}

void V2BankLevelDatapath::ReadNext(dram::DramLocation loc, uint64_t first_burst,
                                   uint32_t idx, uint32_t nbursts) {
  if (idx == nbursts) {
    DrainSegment(loc);
    return;
  }
  dram::Command rd{dram::CommandType::kRead, rank_index(), loc.bank, loc.row,
                   loc.burst_col + idx};
  const uint64_t addr = first_burst + uint64_t{idx} * kBurstBytes;
  IssueWhenReady(
      rd,
      [this, loc, first_burst, idx, nbursts, addr](sim::Tick) {
        if (DrawStallAtBurst()) {
          // Sequencer stall: the wave never completes and the driver
          // watchdog aborts the job (teardown disarms the banks).
          return;
        }
        ++stats().bursts_read;
        ++filter_bursts_;
        // The comparator still waits the internal CAS latency for the burst
        // to reach it; it just never crosses the IO bus.
        stats().data_wait_ps += BusCycles(timing().cl);
        if (!HandleReadFault(addr)) {
          return;  // uncorrectable ECC: FailJob already ran
        }
        const uint32_t words = kBurstBytes / 8;
        // Probe jobs run each bank's hash-lane slice at its own (slower)
        // scheduled rate instead of the range comparator's.
        const bool probe = is_probe();
        sim::Tick proc = probe ? config().BankProbeBurstProcessingPs(words)
                               : config().BankBurstProcessingPs(words);
        stats().engine_busy_ps += proc;
        stats().energy_fj += (probe ? config().bank_probe_energy_per_word_fj
                                    : config().bank_energy_per_word_fj) *
                             words;
        ReadNext(loc, first_burst, idx + 1, nbursts);
      },
      /*on_stale=*/
      [this, loc, first_burst, idx, nbursts] {
        Reactivate(loc, first_burst, idx, nbursts);
      },
      /*defer_to_refresh=*/false);
}

void V2BankLevelDatapath::DrainSegment(dram::DramLocation loc) {
  // PRE on an armed bank with pending bits drains the accumulator over the
  // per-rank result bus (the DRAM model serializes concurrent drains).
  dram::Command pre{dram::CommandType::kPrecharge, rank_index(), loc.bank};
  IssueWhenReady(
      pre,
      [this, loc](sim::Tick) {
        dram::Command dis{dram::CommandType::kBankDisarm, rank_index(),
                          loc.bank};
        IssueWhenReady(
            dis, [this](sim::Tick) { OnSegmentDone(); },
            /*on_stale=*/nullptr, /*defer_to_refresh=*/false);
      },
      /*on_stale=*/nullptr, /*defer_to_refresh=*/false);
}

void V2BankLevelDatapath::OnSegmentDone() {
  ++filter_segments_;
  NDP_CHECK(wave_pending_ > 0);
  if (--wave_pending_ > 0) return;
  // Wave barrier: every segment drained and disarmed. Evaluate the rows the
  // wave covered (same covers-the-burst formula as v1).
  const uint64_t covered =
      (wave_covered_end_ + kBurstBytes - 1) & ~uint64_t{kBurstBytes - 1};
  const uint64_t last = std::min(
      total_rows_, (covered - base_ + stride_bytes_ - 1) / stride_bytes_);
  EvalRange(last);
}

bool V2BankLevelDatapath::EvalRow(uint64_t r) const {
  if (is_probe()) {
    return EvalProbeKey(ReadValue(base_ + r * config().elem_bytes));
  }
  if (is_rowstore()) {
    bool pass = true;
    for (const RowPredicate& p : rowstore_job().predicates) {
      int64_t v = static_cast<int64_t>(
          Read64(base_ + r * rowstore_job().tuple_bytes + p.attr_offset_bytes));
      pass = pass && EvalCompare(p.op, v, p.range_low, p.range_high);
    }
    return pass;
  }
  int64_t v = ReadValue(base_ + r * config().elem_bytes);
  return EvalCompare(select_job().op, v, select_job().range_low,
                     select_job().range_high);
}

void V2BankLevelDatapath::EvalRange(uint64_t last) {
  uint64_t r = cursor_rows();
  uint64_t matches_here = 0;
  while (r < last) {
    if (pending_bit_count() >= config().output_buffer_bits) {
      // Output buffer full mid-wave: commit progress and flush. Every bank
      // is precharged and disarmed at a barrier, so the writeback bursts
      // cannot collide with filter state.
      add_matches(matches_here);
      stats().rows_processed += r - cursor_rows();
      set_cursor_rows(r);
      FlushBitmap([this, last] { EvalRange(last); });
      return;
    }
    bool pass = EvalRow(r);
    AppendBit(pass);
    if (pass) ++matches_here;
    ++r;
  }
  add_matches(matches_here);
  stats().rows_processed += r - cursor_rows();
  set_cursor_rows(r);
  if (next_seg_start_ < scan_end_) {
    StartWave();
  } else {
    FlushBitmap([this] { FinishJob(); });
  }
}

}  // namespace

std::unique_ptr<DatapathModel> MakeV2BankLevelDatapath(Device* dev) {
  return std::make_unique<V2BankLevelDatapath>(dev);
}

}  // namespace ndp::jafar
