#include "jafar/generation.h"

#include <cstdlib>

namespace ndp::jafar {

const char* DeviceGenerationToString(DeviceGeneration gen) {
  switch (gen) {
    case DeviceGeneration::kV1RankIo: return "v1_rank_io";
    case DeviceGeneration::kV2BankLevel: return "v2_bank_level";
  }
  return "?";
}

const char* DeviceGenerationNames() { return "v1_rank_io, v2_bank_level"; }

Result<DeviceGeneration> ParseDeviceGeneration(const std::string& name) {
  if (name == "v1_rank_io") return DeviceGeneration::kV1RankIo;
  if (name == "v2_bank_level") return DeviceGeneration::kV2BankLevel;
  return Status::InvalidArgument("unknown device generation '" + name +
                                 "' (valid: " + DeviceGenerationNames() + ")");
}

Result<DeviceGeneration> DeviceGenerationFromEnv(DeviceGeneration fallback) {
  const char* raw = std::getenv("NDP_DEVICE_GEN");
  if (raw == nullptr || *raw == '\0') return fallback;
  auto parsed = ParseDeviceGeneration(raw);
  if (!parsed.ok()) {
    return Status::InvalidArgument("NDP_DEVICE_GEN='" + std::string(raw) +
                                   "' is not a device generation (valid: " +
                                   DeviceGenerationNames() + ")");
  }
  return parsed;
}

}  // namespace ndp::jafar
