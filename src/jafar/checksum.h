// Writeback checksum shared between the device (producer) and the driver
// (verifier): FNV-1a folded over every output-bitmap word a job writes, in
// flush order. The driver recomputes the checksum from DRAM after completion,
// so any corruption between the datapath and the array is detected before
// results are consumed.
#pragma once

#include <cstdint>

namespace ndp::jafar {

constexpr uint64_t kChecksumInit = 14695981039346656037ULL;

/// Folds one 64-bit word into an FNV-1a accumulator, byte by byte.
inline uint64_t ChecksumMix(uint64_t h, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace ndp::jafar
