// Device generations. The JAFAR shell (job admission, driver protocol,
// watchdog/retry/checksum, runtime lanes) is generation-neutral; what differs
// between generations is the datapath — where the comparators sit and which
// DRAM command flow feeds them. The generation is a first-class config knob
// (NDP_DEVICE_GEN) that flows from PlatformConfig/RuntimeConfig down to the
// DatapathModel factory and up to the pushdown cost model.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace ndp::jafar {

enum class DeviceGeneration : uint8_t {
  /// The source paper's datapath: one comparator stream at the DIMM IO
  /// buffer, fed by ordinary rank reads over the shared IO bus.
  kV1RankIo,
  /// Membrane-style bank-level filtering: one comparator per bank, fed by
  /// filter-mode reads that never leave the bank; match bits accumulate per
  /// bank and drain over the per-rank result bus on precharge.
  kV2BankLevel,
};

const char* DeviceGenerationToString(DeviceGeneration gen);

/// All valid generation names, comma-separated (for error messages and the
/// README knob table).
const char* DeviceGenerationNames();

/// Strict parse: exactly one of the valid names, else InvalidArgument whose
/// message lists them.
Result<DeviceGeneration> ParseDeviceGeneration(const std::string& name);

/// Reads NDP_DEVICE_GEN. Unset -> `fallback`; set to an unknown string ->
/// InvalidArgument listing the valid names (strict-parse style: a typo must
/// never silently fall back).
Result<DeviceGeneration> DeviceGenerationFromEnv(DeviceGeneration fallback);

}  // namespace ndp::jafar
