// The JAFAR device model: an integrated circuit mounted on the DIMM (§2.2,
// "Physical Implementation") that issues its own ACT/RD/WR/PRE commands to
// its rank through the shared channel — obeying exactly the same DDR3 timing
// rules as the host memory controller — consumes words from the IO buffer at
// the rate the accel schedule derived, and writes its output bitmap back to a
// pre-programmed DRAM location every time the n-bit output buffer fills.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "dram/dram_system.h"
#include "jafar/config.h"
#include "jafar/jobs.h"
#include "sim/event_queue.h"
#include "util/bitvector.h"
#include "util/stats_registry.h"
#include "util/status.h"

namespace ndp::fault {
class FaultInjector;
}  // namespace ndp::fault

namespace ndp::jafar {

class DatapathModel;

/// Per-job and lifetime counters of one device.
struct DeviceStats {
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;  ///< aborted by watchdog or failed (ECC UE, ...)
  uint64_t rows_processed = 0;
  uint64_t matches = 0;
  uint64_t bursts_read = 0;
  uint64_t bursts_written = 0;
  uint64_t activates = 0;
  sim::Tick data_wait_ps = 0;    ///< CAS-latency time spent waiting for data
  sim::Tick engine_busy_ps = 0;  ///< time the filter datapath was computing
  sim::Tick total_busy_ps = 0;   ///< wall time from job start to completion
  double energy_fj = 0.0;
  uint64_t polite_backoffs = 0;  ///< deferrals to host traffic (polite mode)
  uint64_t refresh_backoffs = 0;  ///< deferrals to a host refresh steal-back

  /// The §2.2 observation: fraction of each access latency spent waiting for
  /// DRAM rather than computing.
  double WaitFraction() const {
    sim::Tick denom = data_wait_ps + engine_busy_ps;
    return denom ? static_cast<double>(data_wait_ps) / static_cast<double>(denom)
                 : 0.0;
  }

  /// Per-run stats as the difference against a snapshot taken before the run.
  /// All fields are monotonic accumulators, so plain subtraction is exact.
  DeviceStats DeltaSince(const DeviceStats& before) const {
    DeviceStats d;
    d.jobs_completed = jobs_completed - before.jobs_completed;
    d.jobs_failed = jobs_failed - before.jobs_failed;
    d.rows_processed = rows_processed - before.rows_processed;
    d.matches = matches - before.matches;
    d.bursts_read = bursts_read - before.bursts_read;
    d.bursts_written = bursts_written - before.bursts_written;
    d.activates = activates - before.activates;
    d.data_wait_ps = data_wait_ps - before.data_wait_ps;
    d.engine_busy_ps = engine_busy_ps - before.engine_busy_ps;
    d.total_busy_ps = total_busy_ps - before.total_busy_ps;
    d.energy_fj = energy_fj - before.energy_fj;
    d.polite_backoffs = polite_backoffs - before.polite_backoffs;
    d.refresh_backoffs = refresh_backoffs - before.refresh_backoffs;
    return d;
  }
};

/// \brief One JAFAR unit, bound to one rank of one channel.
class Device {
 public:
  /// `dram` supplies both timing (channel) and functional contents (backing
  /// store). `channel_index`/`rank_index` locate the DIMM this unit sits on.
  /// `stats` (optional) mounts the device's counters into a registry under
  /// the scope's prefix.
  Device(dram::DramSystem* dram, uint32_t channel_index, uint32_t rank_index,
         DeviceConfig config, const StatsScope& stats = {});
  ~Device();  // out of line: DatapathModel is incomplete here
  NDP_DISALLOW_COPY_AND_ASSIGN(Device);

  // -- Job entry points. One job at a time; on_done receives the completion
  //    tick. All fail with DeviceBusy if a job is running, InvalidArgument if
  //    the job's addresses leave this device's rank, and FailedPrecondition
  //    if ownership is required but not held. ------------------------------

  Status StartSelect(const SelectJob& job, std::function<void(sim::Tick)> on_done);
  Status StartAggregate(const AggregateJob& job,
                        std::function<void(sim::Tick)> on_done);
  Status StartProject(const ProjectJob& job,
                      std::function<void(sim::Tick)> on_done);
  Status StartRowStore(const RowStoreJob& job,
                       std::function<void(sim::Tick)> on_done);
  Status StartSort(const SortJob& job, std::function<void(sim::Tick)> on_done);
  Status StartGroupBy(const GroupByJob& job,
                      std::function<void(sim::Tick)> on_done);
  Status StartProbe(const ProbeJob& job, std::function<void(sim::Tick)> on_done);

  bool busy() const { return busy_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }
  const DeviceConfig& config() const { return config_; }
  uint32_t channel_index() const { return channel_index_; }
  uint32_t rank_index() const { return rank_index_; }
  dram::DramSystem* dram() { return dram_; }
  /// The wheel this unit schedules on: its channel's partition queue in
  /// partitioned mode, the system's shared queue otherwise.
  sim::EventQueue* event_queue() const { return eq_; }

  /// Matches produced by the most recent completed select/row-store job.
  uint64_t last_match_count() const { return last_matches_; }

  // -- Fault injection & recovery (src/fault) -------------------------------

  /// Attaches a seeded fault source. Null (the default) means no faults; the
  /// draw sites only exist when built with NDP_FAULT_INJECT.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Outcome of the most recent job: OK after a clean FinishJob, the failure
  /// Status after an async abort (uncorrectable ECC, watchdog AbortJob).
  /// Drivers must consult this in their completion callback — a callback
  /// invocation alone no longer implies success.
  const Status& last_job_status() const { return last_job_status_; }

  /// FNV-1a checksum over every output-bitmap word the most recent
  /// select/row-store job wrote back, in flush order. The driver recomputes
  /// it from DRAM to detect result corruption (writeback verification).
  uint64_t last_result_checksum() const { return last_result_checksum_; }

  /// Hard-resets a hung or runaway job: strands all in-flight sequencer
  /// events (epoch guard), settles timing stats, marks the job failed and
  /// frees the device WITHOUT invoking the completion callback. No-op when
  /// idle, so a watchdog may race a completion harmlessly. This is the
  /// recovery path a real driver reaches through the device reset register.
  void AbortJob();

 private:
  // The generation-specific half lives behind DatapathModel (datapath.h),
  // which is this class's ONLY friend: concrete generations reach the shell
  // exclusively through DatapathModel's protected forwarders.
  friend class DatapathModel;

  struct Step;  // one pending command in the sequencer

  /// Validates that [base, base+len) lies within this device's rank and
  /// returns OK, with decoded sanity checks.
  Status CheckRange(uint64_t base, uint64_t len) const;

  /// Reads one column value (64-bit word, or sign-extended 32-bit half when
  /// elem_bytes == 4) from the functional backing store.
  int64_t ReadValue(uint64_t addr) const;
  Status CheckIdleAndOwned() const;

  dram::Channel& channel() { return dram_->channel(channel_index_); }
  const dram::DramTiming& timing() const { return dram_->timing(); }
  sim::Tick BusCycles(uint32_t n) const {
    return n * dram_->timing().tck_ps;
  }

  // -- Sequencer: issues one command chain; all jobs are built on these. ----

  /// Issues `cmd` as soon as legal (and, in polite mode, as soon as the host
  /// controller is idle), then calls `next(done_tick)`. For column commands,
  /// if a third party (host refresh in polite mode) closed the target row
  /// between scheduling and issue, `on_stale` is invoked instead so the
  /// caller can re-open the row. `defer_to_refresh` controls the §3.3
  /// refresh steal-back backoff: generations whose command chains must not
  /// yield mid-flight (v2 holds armed banks the controller refuses to
  /// refresh) pass false and yield at their own barriers instead.
  void IssueWhenReady(dram::Command cmd, std::function<void(sim::Tick)> next,
                      std::function<void()> on_stale = nullptr,
                      bool defer_to_refresh = true);

  /// Ensures `loc`'s bank has `loc.row` open (PRE/ACT as needed), then calls
  /// `next`.
  void OpenRow(const dram::DramLocation& loc, std::function<void()> next);

  /// Reads the burst at `addr`; calls `next(data_done_tick)`.
  void ReadBurst(uint64_t addr, std::function<void(sim::Tick)> next);

  /// Writes the burst at `addr` (functional bytes must already be in the
  /// backing store); calls `next(data_done_tick)`.
  void WriteBurst(uint64_t addr, std::function<void(sim::Tick)> next);

  // -- Select/row-store machinery. The scan sequencer itself lives in the
  //    generation's DatapathModel; the shell keeps the writeback and
  //    completion paths every generation shares. ----------------------------

  void ContinueWhenEngineReady(void (Device::*step)());
  void FlushBitmap(std::function<void()> next);
  void WriteBurstChain(uint64_t addr, uint64_t bursts,
                       std::function<void()> next);
  void FinishJob();

  /// Fails the running job with `st`: strands in-flight events, settles
  /// stats, records last_job_status_ and invokes the completion callback
  /// (which must check last_job_status()).
  void FailJob(Status st);

  /// Epoch-guarded scheduling: the closure is dropped (not run) if the job
  /// it belongs to was aborted or finished before the event fires. Every
  /// sequencer continuation goes through these so AbortJob can cancel a job
  /// without walking the event queue.
  void ScheduleAtGuarded(sim::Tick t, std::function<void()> fn);
  void ScheduleAfterGuarded(sim::Tick delta, std::function<void()> fn);

  /// Draws the hang fault for a freshly dispatched job. Returns true when
  /// the sequencer hangs: the first step is never scheduled and only
  /// AbortJob (driver watchdog) can free the device.
  bool MaybeInjectHang();

  /// Applies one drawn read-path fault to the burst at `burst_addr` through
  /// the SECDED model. Correctable: corrected in-flight, scrub counter bumps,
  /// returns true (job continues). Uncorrectable: fails the job, returns
  /// false.
  bool HandleReadFault(uint64_t burst_addr);

  /// True when every hash lane's bit for `key` is set in the probe SRAM
  /// (Bloom membership; no false negatives by construction).
  bool EvalProbeKey(int64_t key) const;

  void AggregateStep();
  void ContinueAggregateWhenEngineReady();
  void ProjectStep();
  void FlushProjectOutput(std::function<void()> next, bool final_flush);
  void SortStep();
  void GroupByStep();
  void ProcessGroupByChunk(uint64_t chunk_rows, sim::Tick data_done);
  void ReadBurstChain(uint64_t addr, uint64_t bursts,
                      std::function<void(sim::Tick)> on_last_data);

  dram::DramSystem* dram_;
  uint32_t channel_index_;
  uint32_t rank_index_;
  DeviceConfig config_;
  sim::EventQueue* eq_;
  std::unique_ptr<DatapathModel> datapath_;  ///< generation-specific sequencer

  bool busy_ = false;
  std::function<void(sim::Tick)> on_done_;
  DeviceStats stats_;
  uint64_t last_matches_ = 0;

  fault::FaultInjector* injector_ = nullptr;  ///< not owned; may be null
  uint64_t job_epoch_ = 0;       ///< bumped on job end/abort to strand events
  Status last_job_status_;       ///< outcome of the most recent job
  uint64_t last_result_checksum_ = 0;  ///< FNV-1a over flushed bitmap words

  // Job state (one job at a time; union-like, only the active kind is used).
  std::optional<SelectJob> select_;
  std::optional<AggregateJob> aggregate_;
  std::optional<ProjectJob> project_;
  std::optional<RowStoreJob> rowstore_;
  std::optional<SortJob> sort_;
  std::optional<GroupByJob> groupby_;
  std::optional<ProbeJob> probe_;
  std::vector<int64_t> groupby_agg_;
  std::vector<int64_t> groupby_count_;
  std::vector<uint64_t> probe_sram_;  ///< Bloom image latched by BeginProbe

  uint64_t cursor_rows_ = 0;       ///< rows processed so far
  sim::Tick engine_ready_at_ = 0;  ///< datapath pipeline availability
  BitVector pending_bits_;         ///< output buffer (n bits)
  uint64_t pending_bit_count_ = 0;
  uint64_t bitmap_write_cursor_ = 0;  ///< bytes of bitmap already written
  int64_t agg_acc_ = 0;
  std::vector<int64_t> project_out_buffer_;
  uint64_t project_emitted_ = 0;
};

}  // namespace ndp::jafar
