// Host-side driver for a JAFAR unit. Implements the paper's invocation model:
//  * rank ownership hand-off through the memory controller's MR3/MPR write
//    (§2.2, "Coordinating DRAM Access");
//  * the Figure 2 API, `select_jafar(col_data, range_low, range_high,
//    out_buf, num_input_rows, &num_output_rows)`, called once per (pinned)
//    virtual-memory page because JAFAR relies on the CPU for translation;
//  * completion signalling through a polled flag word in shared memory.
#pragma once

#include <cstdint>
#include <functional>

#include "jafar/device.h"
#include "jafar/registers.h"

namespace ndp::jafar {

struct DriverConfig {
  /// Invocation granularity: Figure 2's API is per virtual-memory page.
  uint64_t page_bytes = 4096;
  /// Completion flag value written to SelectResult::flag_addr when done.
  uint64_t done_flag_value = 1;
};

/// Result of a driver-level select call.
struct SelectResult {
  uint64_t num_output_rows = 0;  ///< population count of the bitmap
  sim::Tick completed_at = 0;
  uint64_t pages = 0;            ///< per-page device invocations performed
};

/// \brief The driver: owns the control-register ceremony and page chunking.
class Driver {
 public:
  Driver(Device* device, dram::MemoryController* controller,
         DriverConfig config = DriverConfig{});
  NDP_DISALLOW_COPY_AND_ASSIGN(Driver);

  /// Programs MR3 to grant the device's rank to the accelerator; `done` fires
  /// when the MRS has taken effect.
  void AcquireOwnership(std::function<void(sim::Tick)> done);
  /// Returns the rank to the host memory controller.
  void ReleaseOwnership(std::function<void(sim::Tick)> done);

  /// Asynchronous Figure-2 select over `num_input_rows` 64-bit values at
  /// physical address `col_addr` (page-aligned), bitmap to `out_addr`.
  /// `flag_addr` (0 = none) receives the done flag for CPU polling.
  /// Internally issues one device job per page.
  Status SelectJafar(uint64_t col_addr, int64_t range_low, int64_t range_high,
                     uint64_t out_addr, uint64_t num_input_rows,
                     uint64_t flag_addr,
                     std::function<void(const SelectResult&)> on_done);

  /// Single-shot pass-throughs for the §4 extension engines.
  Status AggregateJafar(const AggregateJob& job,
                        std::function<void(sim::Tick)> on_done);
  Status ProjectJafar(const ProjectJob& job,
                      std::function<void(sim::Tick)> on_done);
  Status RowStoreJafar(const RowStoreJob& job,
                       std::function<void(sim::Tick)> on_done);
  Status SortJafar(const SortJob& job, std::function<void(sim::Tick)> on_done);
  Status GroupByJafar(const GroupByJob& job,
                      std::function<void(sim::Tick)> on_done);

  /// §4's hierarchical aggregation: covers a key domain of `num_groups`
  /// (starting at key 0) that may exceed the device's bucket SRAM by running
  /// one GroupBy pass per bucket window over the same data. The merged
  /// results land contiguously at job.out_base (num_groups x 16 bytes).
  /// `job.key_offset` is managed internally.
  Status HierarchicalGroupBy(GroupByJob job, uint32_t num_groups,
                             std::function<void(sim::Tick)> on_done);

  /// The memory-mapped register block (exposed for inspection/testing).
  const ControlRegisters& registers() const { return regs_; }

  Device* device() { return device_; }

 private:
  void RunNextPage();
  void FinishSelect(sim::Tick now);

  Device* device_;
  dram::MemoryController* controller_;
  DriverConfig config_;
  ControlRegisters regs_;

  // In-flight paged select state.
  bool select_active_ = false;
  uint64_t cur_col_ = 0;
  uint64_t cur_out_ = 0;
  uint64_t rows_left_ = 0;
  int64_t lo_ = 0, hi_ = 0;
  uint64_t flag_addr_ = 0;
  SelectResult result_;
  std::function<void(const SelectResult&)> select_done_;
};

}  // namespace ndp::jafar
