// Host-side driver for a JAFAR unit. Implements the paper's invocation model:
//  * rank ownership hand-off through the memory controller's MR3/MPR write
//    (§2.2, "Coordinating DRAM Access");
//  * the Figure 2 API, `select_jafar(col_data, range_low, range_high,
//    out_buf, num_input_rows, &num_output_rows)`, called once per (pinned)
//    virtual-memory page because JAFAR relies on the CPU for translation;
//  * completion signalling through a polled flag word in shared memory;
//  * recovery: a watchdog timer armed for every dispatched job, writeback
//    checksum verification of select bitmaps, and capped-exponential-backoff
//    retries, so a hung/faulted device job surfaces as a retried page rather
//    than a wedged query.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/retry.h"
#include "jafar/device.h"
#include "jafar/registers.h"

namespace ndp::jafar {

struct DriverConfig {
  /// Invocation granularity: Figure 2's API is per virtual-memory page.
  uint64_t page_bytes = 4096;
  /// Completion flag value written to SelectResult::flag_addr when done.
  uint64_t done_flag_value = 1;

  // -- Recovery -------------------------------------------------------------
  /// Retry budget for retryable job failures (timeouts, ECC machine checks,
  /// checksum mismatches). Validation errors are never retried.
  fault::RetryPolicy retry;
  /// Watchdog deadline = base + per_row * job rows, armed at every dispatch.
  /// Exclusive-ownership page jobs complete in a few microseconds, so 50 µs
  /// of base slack only fires on a genuinely wedged device.
  sim::Tick watchdog_base_ps = 50'000'000;
  sim::Tick watchdog_per_row_ps = 10'000;
  /// Recompute the device's writeback checksum from DRAM after each select
  /// page and retry on mismatch (detects result-bitmap corruption).
  bool verify_writeback = true;
};

/// Recovery counters of one driver (registered under its stats scope).
struct DriverStats {
  uint64_t watchdog_fires = 0;     ///< jobs reclaimed by timeout
  uint64_t retries = 0;            ///< re-dispatched job attempts
  uint64_t checksum_errors = 0;    ///< writeback verification mismatches
  uint64_t device_errors = 0;      ///< jobs that failed asynchronously
  uint64_t permanent_failures = 0; ///< retry budget exhausted / non-retryable
};

/// Result of a driver-level select call.
struct SelectResult {
  uint64_t num_output_rows = 0;  ///< population count of the bitmap
  sim::Tick completed_at = 0;
  uint64_t pages = 0;            ///< per-page device invocations performed
  /// OK on success; the failure cause after the retry budget is exhausted
  /// (num_output_rows is zeroed in that case).
  Status status;
};

/// \brief The driver: control-register ceremony, page chunking, recovery.
class Driver {
 public:
  Driver(Device* device, dram::MemoryController* controller,
         DriverConfig config = DriverConfig{}, const StatsScope& stats = {});
  NDP_DISALLOW_COPY_AND_ASSIGN(Driver);

  /// Programs MR3 to grant the device's rank to the accelerator; `done` fires
  /// when the MRS has taken effect.
  void AcquireOwnership(std::function<void(sim::Tick)> done);
  /// Returns the rank to the host memory controller.
  void ReleaseOwnership(std::function<void(sim::Tick)> done);

  /// Asynchronous Figure-2 select over `num_input_rows` 64-bit values at
  /// physical address `col_addr` (page-aligned), bitmap to `out_addr`.
  /// `flag_addr` (0 = none) receives the done flag for CPU polling.
  /// Internally issues one device job per page; failed pages are retried
  /// under the RetryPolicy, and on permanent failure `on_done` fires with
  /// a non-OK SelectResult::status and the kStatus register reads kError.
  Status SelectJafar(uint64_t col_addr, int64_t range_low, int64_t range_high,
                     uint64_t out_addr, uint64_t num_input_rows,
                     uint64_t flag_addr,
                     std::function<void(const SelectResult&)> on_done);

  /// Single-shot pass-throughs for the §4 extension engines. All are guarded
  /// by the same watchdog/retry machinery; `on_done` always fires (check the
  /// kStatus register: kDone on success, kError on permanent failure).
  Status AggregateJafar(const AggregateJob& job,
                        std::function<void(sim::Tick)> on_done);
  Status ProjectJafar(const ProjectJob& job,
                      std::function<void(sim::Tick)> on_done);
  Status RowStoreJafar(const RowStoreJob& job,
                       std::function<void(sim::Tick)> on_done);
  Status SortJafar(const SortJob& job, std::function<void(sim::Tick)> on_done);
  Status GroupByJafar(const GroupByJob& job,
                      std::function<void(sim::Tick)> on_done);
  Status ProbeJafar(const ProbeJob& job,
                    std::function<void(sim::Tick)> on_done);

  /// §4's hierarchical aggregation: covers a key domain of `num_groups`
  /// (starting at key 0) that may exceed the device's bucket SRAM by running
  /// one GroupBy pass per bucket window over the same data. The merged
  /// results land contiguously at job.out_base (num_groups x 16 bytes).
  /// `job.key_offset` is managed internally.
  Status HierarchicalGroupBy(GroupByJob job, uint32_t num_groups,
                             std::function<void(sim::Tick)> on_done);

  /// The memory-mapped register block (exposed for inspection/testing).
  const ControlRegisters& registers() const { return regs_; }

  const DriverStats& stats() const { return stats_; }

  Device* device() { return device_; }

 private:
  /// Watchdog deadline event; one is enough because the device runs one job
  /// at a time.
  struct WatchdogNode : sim::EventNode {
    Driver* driver = nullptr;

   protected:
    void Fire() override { driver->OnWatchdogFire(); }
  };

  static bool IsRetryable(StatusCode code);

  void ArmWatchdog(uint64_t rows, bool for_select);
  void DisarmWatchdog();
  void OnWatchdogFire();
  void RecordRecovery(sim::Tick latency_ps);

  // -- Paged select ---------------------------------------------------------
  void StartPageAttempt(uint32_t attempt);
  void OnPageDone(uint64_t rows, uint64_t elem);
  void HandlePageFailure(Status st);
  void FailSelect(Status st);
  void FinishSelect(sim::Tick now);
  bool VerifyPageChecksum(uint64_t rows) const;

  // -- Engine jobs (aggregate/project/row-store/sort/group-by) --------------
  /// `start` re-dispatches the job with the wrapped callback; `watch_rows`
  /// scales the watchdog deadline.
  Status StartEngineJob(
      std::function<Status(std::function<void(sim::Tick)>)> start,
      uint64_t watch_rows, std::function<void(sim::Tick)> on_done);
  Status EngineAttempt();
  void OnEngineDone(sim::Tick t);
  void HandleEngineFailure(Status st);

  Device* device_;
  dram::MemoryController* controller_;
  DriverConfig config_;
  sim::EventQueue* eq_;
  ControlRegisters regs_;
  DriverStats stats_;
  /// Dispatch-to-success latency of recovered (attempt > 1) jobs, in ps.
  ndp::Histogram recovery_latency_{0.0, 5.0e8, 50};

  WatchdogNode watchdog_;
  bool watchdog_for_select_ = false;

  // In-flight paged select state.
  bool select_active_ = false;
  uint64_t cur_col_ = 0;
  uint64_t cur_out_ = 0;
  uint64_t rows_left_ = 0;
  int64_t lo_ = 0, hi_ = 0;
  uint64_t flag_addr_ = 0;
  uint32_t page_attempt_ = 0;                ///< 1-based, current page
  sim::Tick page_first_dispatch_ps_ = 0;     ///< attempt 1 dispatch time
  SelectResult result_;
  std::function<void(const SelectResult&)> select_done_;

  // In-flight engine-job state.
  bool engine_active_ = false;
  uint32_t engine_attempt_ = 0;
  uint64_t engine_watch_rows_ = 0;
  sim::Tick engine_first_dispatch_ps_ = 0;
  std::function<Status(std::function<void(sim::Tick)>)> engine_start_;
  std::function<void(sim::Tick)> engine_done_;
};

}  // namespace ndp::jafar
