// The generation-specific half of the JAFAR device. Device (device.h) is the
// generation-neutral shell — job admission, the driver protocol, watchdog /
// retry / checksum recovery, runtime-lane integration — and DatapathModel
// owns everything that differs between device generations: how a scan job is
// sequenced into DRAM commands and how the comparators are timed.
//
// DatapathModel is the ONLY friend of Device. Concrete generations never
// touch Device internals directly; they reach the shell exclusively through
// the protected forwarders below, which keeps the shell/datapath seam
// explicit and auditable. Generation dispatch happens in exactly one place:
// MakeDatapathModel (the factory in datapath.cc). Everywhere else must go
// through this interface (enforced by the ndp-lint `generation-dispatch`
// rule).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dram/command.h"
#include "dram/dram_system.h"
#include "jafar/config.h"
#include "jafar/generation.h"
#include "jafar/jobs.h"
#include "sim/time.h"
#include "util/stats_registry.h"

namespace ndp::jafar {

class Device;
struct DeviceStats;

/// \brief One device generation's scan datapath: sequencer + comparator
/// timing. Constructed once per Device by MakeDatapathModel.
class DatapathModel {
 public:
  explicit DatapathModel(Device* dev) : dev_(dev) {}
  virtual ~DatapathModel() = default;
  DatapathModel(const DatapathModel&) = delete;
  DatapathModel& operator=(const DatapathModel&) = delete;

  virtual DeviceGeneration generation() const = 0;

  /// One-time DRAM-side setup at device construction (v2 installs the bank
  /// filter timing on its rank) and registration of generation-specific
  /// counters under the device's stats scope.
  virtual void Attach(const StatsScope& stats) { (void)stats; }

  /// Entry point for scan jobs (select, row-store and probe): called once,
  /// after the invocation overhead has elapsed, with the job state already
  /// staged in the shell. Drives the entire scan and ends it with FinishJob()
  /// (or FailJob() via the shell's fault paths).
  virtual void BeginScan() = 0;

  /// Entry point for semijoin probe jobs. Non-virtual and shared by every
  /// generation: brackets the filter-image preload (DRAM reads latched into
  /// the probe SRAM, with the shadow checker's load window held open) and
  /// then hands over to the generation's BeginScan sequencer.
  void BeginProbe();

  /// Job-teardown hook, called on every job end — clean finish, failure and
  /// driver abort alike. Generations holding DRAM-side state (v2's armed
  /// bank filters) force-release it here; must be idempotent and must not
  /// schedule events.
  virtual void OnJobTeardown() {}

 protected:
  // -- Forwarders into the device shell. DatapathModel is Device's single
  // friend; concrete generations access the shell solely through these. ----

  const DeviceConfig& config() const;
  DeviceStats& stats();
  sim::EventQueue* eq() const;
  uint32_t rank_index() const;
  uint32_t channel_index() const;
  dram::DramSystem& dram();
  dram::Channel& channel();
  const dram::DramTiming& timing() const;
  sim::Tick BusCycles(uint32_t n) const;

  // Job state staged by the shell's Start* entry points.
  bool is_rowstore() const;
  bool is_probe() const;
  const SelectJob& select_job() const;
  const RowStoreJob& rowstore_job() const;
  const ProbeJob& probe_job() const;
  /// Bloom membership of `key` against the preloaded probe SRAM.
  bool EvalProbeKey(int64_t key) const;
  uint64_t cursor_rows() const;
  void set_cursor_rows(uint64_t rows);
  sim::Tick engine_ready_at() const;
  void set_engine_ready_at(sim::Tick t);
  void add_matches(uint64_t n);

  // Output-bitmap buffer (n bits, flushed by the shell's writeback path).
  void AppendBit(bool set);
  uint64_t pending_bit_count() const;

  // Shell sequencer primitives (epoch-guarded; see device.h).
  void IssueWhenReady(dram::Command cmd, std::function<void(sim::Tick)> next,
                      std::function<void()> on_stale = nullptr,
                      bool defer_to_refresh = true);
  void OpenRow(const dram::DramLocation& loc, std::function<void()> next);
  void ReadBurst(uint64_t addr, std::function<void(sim::Tick)> next);
  void ReadBurstChain(uint64_t addr, uint64_t bursts,
                      std::function<void(sim::Tick)> on_last_data);
  void FlushBitmap(std::function<void()> next);
  void FinishJob();
  void FailJob(Status st);
  void ScheduleAtGuarded(sim::Tick t, std::function<void()> fn);
  void ScheduleAfterGuarded(sim::Tick delta, std::function<void()> fn);

  // Functional reads against the backing store.
  int64_t ReadValue(uint64_t addr) const;
  uint64_t Read64(uint64_t addr) const;

  // Fault-injection draws (no-ops when faults are compiled out or no
  // injector is attached).
  bool DrawStallAtBurst();
  bool HandleReadFault(uint64_t burst_addr);

  // Host-controller interaction (refresh steal-back, §3.3).
  bool RefreshClaims() const;

 private:
  Device* dev_;
};

/// The single place that branches on the generation. Everything downstream
/// of Device's constructor sees only the interface.
std::unique_ptr<DatapathModel> MakeDatapathModel(DeviceGeneration gen,
                                                 Device* dev);

}  // namespace ndp::jafar
