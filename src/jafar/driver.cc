#include "jafar/driver.h"

#include <algorithm>

#include "jafar/checksum.h"
#include "util/macros.h"

namespace ndp::jafar {

Driver::Driver(Device* device, dram::MemoryController* controller,
               DriverConfig config, const StatsScope& stats)
    : device_(device),
      controller_(controller),
      config_(config),
      eq_(device->event_queue()) {
  NDP_CHECK(config_.page_bytes % 64 == 0);
  NDP_CHECK(config_.retry.max_attempts >= 1);
  watchdog_.driver = this;
  stats.Counter("watchdog_fires", &stats_.watchdog_fires);
  stats.Counter("retries", &stats_.retries);
  stats.Counter("checksum_errors", &stats_.checksum_errors);
  stats.Counter("device_errors", &stats_.device_errors);
  stats.Counter("permanent_failures", &stats_.permanent_failures);
  stats.Histogram("recovery_latency_ps", &recovery_latency_);
}

bool Driver::IsRetryable(StatusCode code) {
  switch (code) {
    // Transient device conditions: timeouts, machine checks, corruption.
    case StatusCode::kInternal:
    case StatusCode::kDeviceBusy:
    case StatusCode::kResourceExhausted:
      return true;
    // Validation/configuration errors: re-dispatching cannot fix these.
    default:
      return false;
  }
}

void Driver::ArmWatchdog(uint64_t rows, bool for_select) {
  watchdog_for_select_ = for_select;
  DisarmWatchdog();
  sim::Tick deadline = eq_->Now() + config_.watchdog_base_ps +
                       rows * config_.watchdog_per_row_ps;
  eq_->Schedule(deadline, &watchdog_);
}

void Driver::DisarmWatchdog() {
  if (watchdog_.scheduled()) eq_->Cancel(&watchdog_);
}

void Driver::OnWatchdogFire() {
  ++stats_.watchdog_fires;
  // Reclaim the device. AbortJob is a no-op when the job actually finished
  // but its completion signal was dropped — either way the device is idle
  // afterwards and the attempt is treated as timed out.
  device_->AbortJob();
  Status timeout =
      Status::Internal("watchdog timeout: device did not signal completion");
  if (watchdog_for_select_) {
    HandlePageFailure(std::move(timeout));
  } else {
    HandleEngineFailure(std::move(timeout));
  }
}

void Driver::RecordRecovery(sim::Tick latency_ps) {
  recovery_latency_.Add(static_cast<double>(latency_ps));
}

void Driver::AcquireOwnership(std::function<void(sim::Tick)> done) {
  controller_->TransferOwnership(device_->rank_index(),
                                 dram::RankOwner::kAccelerator, std::move(done));
}

void Driver::ReleaseOwnership(std::function<void(sim::Tick)> done) {
  controller_->TransferOwnership(device_->rank_index(), dram::RankOwner::kHost,
                                 std::move(done));
}

// ---------------------------------------------------------------------------
// Paged select

Status Driver::SelectJafar(uint64_t col_addr, int64_t range_low,
                           int64_t range_high, uint64_t out_addr,
                           uint64_t num_input_rows, uint64_t flag_addr,
                           std::function<void(const SelectResult&)> on_done) {
  if (select_active_) {
    return Status::DeviceBusy("a select_jafar call is already in flight");
  }
  if (num_input_rows == 0) {
    return Status::InvalidArgument("num_input_rows must be positive");
  }
  if (col_addr % config_.page_bytes != 0) {
    return Status::InvalidArgument("col_data must be page aligned (Figure 2: "
                                   "one call per virtual memory page)");
  }
  // Program the control-register block, as the memory-mapped interface would.
  regs_.Write(Reg::kColBase, col_addr);
  regs_.Write(Reg::kNumRows, num_input_rows);
  regs_.Write(Reg::kCompareOp, static_cast<uint64_t>(CompareOp::kBetween));
  regs_.Write(Reg::kRangeLow, static_cast<uint64_t>(range_low));
  regs_.Write(Reg::kRangeHigh, static_cast<uint64_t>(range_high));
  regs_.Write(Reg::kOutBase, out_addr);
  regs_.Write(Reg::kFlagAddr, flag_addr);
  regs_.Write(Reg::kCommand, static_cast<uint64_t>(Command::kGoSelect));
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kBusy));

  select_active_ = true;
  cur_col_ = col_addr;
  cur_out_ = out_addr;
  rows_left_ = num_input_rows;
  lo_ = range_low;
  hi_ = range_high;
  flag_addr_ = flag_addr;
  result_ = SelectResult{};
  select_done_ = std::move(on_done);
  StartPageAttempt(1);
  return Status::OK();
}

void Driver::StartPageAttempt(uint32_t attempt) {
  NDP_CHECK(rows_left_ > 0);
  page_attempt_ = attempt;
  if (attempt == 1) page_first_dispatch_ps_ = eq_->Now();
  uint64_t elem = device_->config().elem_bytes;
  // Job granularity: at least one virtual-memory page (Figure 2's API unit),
  // widened to the device's preferred scan chunk when it advertises one
  // (the v2 sequencer needs a whole bank wave per invocation).
  uint64_t chunk =
      std::max(config_.page_bytes, device_->config().scan_chunk_bytes);
  uint64_t rows_per_page = chunk / elem;
  uint64_t rows = std::min(rows_left_, rows_per_page);

  SelectJob job;
  job.col_base = cur_col_;
  job.num_rows = rows;
  job.op = CompareOp::kBetween;
  job.range_low = lo_;
  job.range_high = hi_;
  job.out_base = cur_out_;
  Status st = device_->StartSelect(
      job, [this, rows, elem](sim::Tick) { OnPageDone(rows, elem); });
  if (!st.ok()) {
    ++stats_.device_errors;
    HandlePageFailure(std::move(st));
    return;
  }
  ArmWatchdog(rows, /*for_select=*/true);
}

void Driver::OnPageDone(uint64_t rows, uint64_t elem) {
  DisarmWatchdog();
  if (!device_->last_job_status().ok()) {
    // Async job failure (e.g. uncorrectable ECC machine check).
    ++stats_.device_errors;
    HandlePageFailure(device_->last_job_status());
    return;
  }
  if (config_.verify_writeback && !VerifyPageChecksum(rows)) {
    ++stats_.checksum_errors;
    HandlePageFailure(
        Status::Internal("writeback checksum mismatch on result bitmap"));
    return;
  }
  if (page_attempt_ > 1) {
    RecordRecovery(eq_->Now() - page_first_dispatch_ps_);
  }
  // The page's matches enter the result exactly once, here: a retried
  // attempt rewrites the page's bitmap from scratch and last_match_count()
  // reflects only the attempt that succeeded, so no double counting.
  result_.num_output_rows += device_->last_match_count();
  ++result_.pages;
  rows_left_ -= rows;
  cur_col_ += rows * elem;
  cur_out_ += (rows + 7) / 8;
  if (rows_left_ == 0) {
    FinishSelect(eq_->Now());
  } else {
    StartPageAttempt(1);
  }
}

bool Driver::VerifyPageChecksum(uint64_t rows) const {
  // Recompute the FNV-1a the device folded over every bitmap word it wrote
  // for this page, reading the words back from the DRAM array.
  uint64_t bytes = (rows + 7) / 8;
  uint64_t h = kChecksumInit;
  for (uint64_t w = 0; w * 8 < bytes; ++w) {
    h = ChecksumMix(h, device_->dram()->backing_store().Read64(cur_out_ + w * 8));
  }
  return h == device_->last_result_checksum();
}

void Driver::HandlePageFailure(Status st) {
  DisarmWatchdog();
  if (!IsRetryable(st.code()) ||
      page_attempt_ >= config_.retry.max_attempts) {
    ++stats_.permanent_failures;
    FailSelect(std::move(st));
    return;
  }
  ++stats_.retries;
  eq_->ScheduleAfter(config_.retry.DelayFor(page_attempt_),
                     [this] { StartPageAttempt(page_attempt_ + 1); });
}

void Driver::FailSelect(Status st) {
  // Surface the failure through the status register and abort the call.
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
  select_active_ = false;
  auto cb = std::move(select_done_);
  select_done_ = nullptr;
  result_.num_output_rows = 0;
  result_.status = std::move(st);
  if (cb) cb(result_);
}

void Driver::FinishSelect(sim::Tick now) {
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
  select_active_ = false;
  result_.completed_at = now;
  // Completion flag for CPU polling (§2.2). Timing is folded into the final
  // bitmap write-back burst; the flag word itself is a functional store.
  if (flag_addr_ != 0) {
    device_->dram()->backing_store().Write64(flag_addr_,
                                             config_.done_flag_value);
  }
  auto cb = std::move(select_done_);
  select_done_ = nullptr;
  if (cb) cb(result_);
}

// ---------------------------------------------------------------------------
// Engine jobs: shared watchdog/retry wrapper

Status Driver::StartEngineJob(
    std::function<Status(std::function<void(sim::Tick)>)> start,
    uint64_t watch_rows, std::function<void(sim::Tick)> on_done) {
  if (engine_active_ || select_active_) {
    return Status::DeviceBusy("another driver call is already in flight");
  }
  engine_active_ = true;
  engine_attempt_ = 0;
  engine_watch_rows_ = watch_rows;
  engine_first_dispatch_ps_ = eq_->Now();
  engine_start_ = std::move(start);
  engine_done_ = std::move(on_done);
  Status st = EngineAttempt();
  if (!st.ok()) {
    // First-attempt synchronous failures (validation, ownership) keep the
    // original pass-through contract: status register + sync return, no
    // retry, no callback.
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
    engine_active_ = false;
    engine_start_ = nullptr;
    engine_done_ = nullptr;
  }
  return st;
}

Status Driver::EngineAttempt() {
  ++engine_attempt_;
  Status st = engine_start_([this](sim::Tick t) { OnEngineDone(t); });
  if (st.ok()) ArmWatchdog(engine_watch_rows_, /*for_select=*/false);
  return st;
}

void Driver::OnEngineDone(sim::Tick t) {
  DisarmWatchdog();
  if (!device_->last_job_status().ok()) {
    ++stats_.device_errors;
    HandleEngineFailure(device_->last_job_status());
    return;
  }
  if (engine_attempt_ > 1) {
    RecordRecovery(eq_->Now() - engine_first_dispatch_ps_);
  }
  engine_active_ = false;
  engine_start_ = nullptr;
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
  auto cb = std::move(engine_done_);
  engine_done_ = nullptr;
  if (cb) cb(t);
}

void Driver::HandleEngineFailure(Status st) {
  DisarmWatchdog();
  if (!IsRetryable(st.code()) ||
      engine_attempt_ >= config_.retry.max_attempts) {
    ++stats_.permanent_failures;
    engine_active_ = false;
    engine_start_ = nullptr;
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
    // The callback still fires so callers pumping the event loop terminate;
    // they must consult the kStatus register (kError) for the outcome.
    auto cb = std::move(engine_done_);
    engine_done_ = nullptr;
    if (cb) cb(eq_->Now());
    return;
  }
  ++stats_.retries;
  eq_->ScheduleAfter(config_.retry.DelayFor(engine_attempt_), [this] {
    Status st2 = EngineAttempt();
    if (!st2.ok()) {
      ++stats_.device_errors;
      HandleEngineFailure(std::move(st2));
    }
  });
}

// ---------------------------------------------------------------------------
// Engine pass-throughs

Status Driver::AggregateJafar(const AggregateJob& job,
                              std::function<void(sim::Tick)> on_done) {
  regs_.Write(Reg::kCommand, static_cast<uint64_t>(Command::kGoAggregate));
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kBusy));
  return StartEngineJob(
      [this, job](std::function<void(sim::Tick)> cb) {
        return device_->StartAggregate(job, std::move(cb));
      },
      job.num_rows, std::move(on_done));
}

Status Driver::ProjectJafar(const ProjectJob& job,
                            std::function<void(sim::Tick)> on_done) {
  regs_.Write(Reg::kCommand, static_cast<uint64_t>(Command::kGoProject));
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kBusy));
  return StartEngineJob(
      [this, job](std::function<void(sim::Tick)> cb) {
        return device_->StartProject(job, std::move(cb));
      },
      job.num_rows, std::move(on_done));
}

Status Driver::RowStoreJafar(const RowStoreJob& job,
                             std::function<void(sim::Tick)> on_done) {
  return StartEngineJob(
      [this, job](std::function<void(sim::Tick)> cb) {
        return device_->StartRowStore(job, std::move(cb));
      },
      job.num_tuples, std::move(on_done));
}

Status Driver::SortJafar(const SortJob& job,
                         std::function<void(sim::Tick)> on_done) {
  return StartEngineJob(
      [this, job](std::function<void(sim::Tick)> cb) {
        return device_->StartSort(job, std::move(cb));
      },
      job.num_rows, std::move(on_done));
}

Status Driver::GroupByJafar(const GroupByJob& job,
                            std::function<void(sim::Tick)> on_done) {
  return StartEngineJob(
      [this, job](std::function<void(sim::Tick)> cb) {
        return device_->StartGroupBy(job, std::move(cb));
      },
      job.num_rows, std::move(on_done));
}

Status Driver::ProbeJafar(const ProbeJob& job,
                          std::function<void(sim::Tick)> on_done) {
  return StartEngineJob(
      [this, job](std::function<void(sim::Tick)> cb) {
        return device_->StartProbe(job, std::move(cb));
      },
      job.num_rows, std::move(on_done));
}

Status Driver::HierarchicalGroupBy(GroupByJob job, uint32_t num_groups,
                                   std::function<void(sim::Tick)> on_done) {
  uint32_t buckets = device_->config().groupby_buckets;
  uint32_t passes = (num_groups + buckets - 1) / buckets;
  if (passes == 0) return Status::InvalidArgument("num_groups must be > 0");
  // Each pass writes its bucket window to out_base + window * 16 bytes; the
  // device result layout is already contiguous per window. Every pass rides
  // the engine watchdog/retry wrapper.
  auto run_pass = std::make_shared<std::function<Status(uint32_t)>>();
  auto done_cb =
      std::make_shared<std::function<void(sim::Tick)>>(std::move(on_done));
  uint64_t out_base = job.out_base;
  // Weak self-reference: a strong capture would cycle through the stored
  // function and leak it (plus done_cb) after the chain completes. The
  // pass-completion callbacks below hold the strong references that keep
  // the chain alive while any pass is in flight.
  std::weak_ptr<std::function<Status(uint32_t)>> weak = run_pass;
  *run_pass = [this, job, passes, buckets, out_base, weak,
               done_cb](uint32_t pass) mutable -> Status {
    auto self = weak.lock();
    GroupByJob p = job;
    p.key_offset = static_cast<int64_t>(pass) * buckets;
    p.out_base = out_base + static_cast<uint64_t>(pass) * buckets * 16;
    return GroupByJafar(
        p, [this, pass, passes, self, done_cb](sim::Tick t) {
          if (regs_.Read(Reg::kStatus) ==
              static_cast<uint64_t>(DeviceStatus::kError)) {
            // Permanent failure of this pass: stop the chain. kStatus stays
            // kError for the caller to observe.
            if (*done_cb) (*done_cb)(t);
            return;
          }
          if (pass + 1 < passes) {
            // Later passes re-run the same validated job on an idle device;
            // a synchronous failure here indicates a bug, not a caller error.
            Status st = (*self)(pass + 1);
            NDP_CHECK_MSG(st.ok(), st.ToString().c_str());
          } else {
            regs_.Write(Reg::kStatus,
                        static_cast<uint64_t>(DeviceStatus::kDone));
            if (*done_cb) (*done_cb)(t);
          }
        });
  };
  return (*run_pass)(0);
}

}  // namespace ndp::jafar
