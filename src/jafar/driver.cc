#include "jafar/driver.h"

#include <algorithm>

#include "util/macros.h"

namespace ndp::jafar {

Driver::Driver(Device* device, dram::MemoryController* controller,
               DriverConfig config)
    : device_(device), controller_(controller), config_(config) {
  NDP_CHECK(config_.page_bytes % 64 == 0);
}

void Driver::AcquireOwnership(std::function<void(sim::Tick)> done) {
  controller_->TransferOwnership(device_->rank_index(),
                                 dram::RankOwner::kAccelerator, std::move(done));
}

void Driver::ReleaseOwnership(std::function<void(sim::Tick)> done) {
  controller_->TransferOwnership(device_->rank_index(), dram::RankOwner::kHost,
                                 std::move(done));
}

Status Driver::SelectJafar(uint64_t col_addr, int64_t range_low,
                           int64_t range_high, uint64_t out_addr,
                           uint64_t num_input_rows, uint64_t flag_addr,
                           std::function<void(const SelectResult&)> on_done) {
  if (select_active_) {
    return Status::DeviceBusy("a select_jafar call is already in flight");
  }
  if (num_input_rows == 0) {
    return Status::InvalidArgument("num_input_rows must be positive");
  }
  if (col_addr % config_.page_bytes != 0) {
    return Status::InvalidArgument("col_data must be page aligned (Figure 2: "
                                   "one call per virtual memory page)");
  }
  // Program the control-register block, as the memory-mapped interface would.
  regs_.Write(Reg::kColBase, col_addr);
  regs_.Write(Reg::kNumRows, num_input_rows);
  regs_.Write(Reg::kCompareOp, static_cast<uint64_t>(CompareOp::kBetween));
  regs_.Write(Reg::kRangeLow, static_cast<uint64_t>(range_low));
  regs_.Write(Reg::kRangeHigh, static_cast<uint64_t>(range_high));
  regs_.Write(Reg::kOutBase, out_addr);
  regs_.Write(Reg::kFlagAddr, flag_addr);
  regs_.Write(Reg::kCommand, static_cast<uint64_t>(Command::kGoSelect));
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kBusy));

  select_active_ = true;
  cur_col_ = col_addr;
  cur_out_ = out_addr;
  rows_left_ = num_input_rows;
  lo_ = range_low;
  hi_ = range_high;
  flag_addr_ = flag_addr;
  result_ = SelectResult{};
  select_done_ = std::move(on_done);
  RunNextPage();
  return Status::OK();
}

void Driver::RunNextPage() {
  NDP_CHECK(rows_left_ > 0);
  uint64_t elem = device_->config().elem_bytes;
  uint64_t rows_per_page = config_.page_bytes / elem;
  uint64_t rows = std::min(rows_left_, rows_per_page);

  SelectJob job;
  job.col_base = cur_col_;
  job.num_rows = rows;
  job.op = CompareOp::kBetween;
  job.range_low = lo_;
  job.range_high = hi_;
  job.out_base = cur_out_;
  Status st = device_->StartSelect(job, [this, rows, elem](sim::Tick t) {
    result_.num_output_rows += device_->last_match_count();
    ++result_.pages;
    rows_left_ -= rows;
    cur_col_ += rows * elem;
    cur_out_ += (rows + 7) / 8;
    if (rows_left_ == 0) {
      FinishSelect(t);
    } else {
      RunNextPage();
    }
  });
  if (!st.ok()) {
    // Surface the failure through the status register and abort the call.
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
    select_active_ = false;
    auto cb = std::move(select_done_);
    select_done_ = nullptr;
    result_.num_output_rows = 0;
    if (cb) cb(result_);
  }
}

void Driver::FinishSelect(sim::Tick now) {
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
  select_active_ = false;
  result_.completed_at = now;
  // Completion flag for CPU polling (§2.2). Timing is folded into the final
  // bitmap write-back burst; the flag word itself is a functional store.
  if (flag_addr_ != 0) {
    device_->dram()->backing_store().Write64(flag_addr_,
                                             config_.done_flag_value);
  }
  auto cb = std::move(select_done_);
  select_done_ = nullptr;
  if (cb) cb(result_);
}

Status Driver::AggregateJafar(const AggregateJob& job,
                              std::function<void(sim::Tick)> on_done) {
  regs_.Write(Reg::kCommand, static_cast<uint64_t>(Command::kGoAggregate));
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kBusy));
  Status st = device_->StartAggregate(
      job, [this, on_done = std::move(on_done)](sim::Tick t) {
        regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
        if (on_done) on_done(t);
      });
  if (!st.ok()) {
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
  }
  return st;
}

Status Driver::ProjectJafar(const ProjectJob& job,
                            std::function<void(sim::Tick)> on_done) {
  regs_.Write(Reg::kCommand, static_cast<uint64_t>(Command::kGoProject));
  regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kBusy));
  Status st = device_->StartProject(
      job, [this, on_done = std::move(on_done)](sim::Tick t) {
        regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
        if (on_done) on_done(t);
      });
  if (!st.ok()) {
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
  }
  return st;
}

Status Driver::RowStoreJafar(const RowStoreJob& job,
                             std::function<void(sim::Tick)> on_done) {
  Status st = device_->StartRowStore(
      job, [this, on_done = std::move(on_done)](sim::Tick t) {
        regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
        if (on_done) on_done(t);
      });
  if (!st.ok()) {
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
  }
  return st;
}

Status Driver::SortJafar(const SortJob& job,
                         std::function<void(sim::Tick)> on_done) {
  Status st = device_->StartSort(
      job, [this, on_done = std::move(on_done)](sim::Tick t) {
        regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
        if (on_done) on_done(t);
      });
  if (!st.ok()) {
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
  }
  return st;
}

Status Driver::GroupByJafar(const GroupByJob& job,
                            std::function<void(sim::Tick)> on_done) {
  Status st = device_->StartGroupBy(
      job, [this, on_done = std::move(on_done)](sim::Tick t) {
        regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kDone));
        if (on_done) on_done(t);
      });
  if (!st.ok()) {
    regs_.Write(Reg::kStatus, static_cast<uint64_t>(DeviceStatus::kError));
  }
  return st;
}

Status Driver::HierarchicalGroupBy(GroupByJob job, uint32_t num_groups,
                                   std::function<void(sim::Tick)> on_done) {
  uint32_t buckets = device_->config().groupby_buckets;
  uint32_t passes = (num_groups + buckets - 1) / buckets;
  if (passes == 0) return Status::InvalidArgument("num_groups must be > 0");
  // Each pass writes its bucket window to out_base + window * 16 bytes; the
  // device result layout is already contiguous per window.
  auto run_pass = std::make_shared<std::function<Status(uint32_t)>>();
  auto done_cb =
      std::make_shared<std::function<void(sim::Tick)>>(std::move(on_done));
  uint64_t out_base = job.out_base;
  *run_pass = [this, job, passes, buckets, out_base, run_pass,
               done_cb](uint32_t pass) mutable -> Status {
    GroupByJob p = job;
    p.key_offset = static_cast<int64_t>(pass) * buckets;
    p.out_base = out_base + static_cast<uint64_t>(pass) * buckets * 16;
    return device_->StartGroupBy(
        p, [this, pass, passes, run_pass, done_cb](sim::Tick t) {
          if (pass + 1 < passes) {
            // Later passes re-run the same validated job on an idle device;
            // a failure here indicates a bug, not a caller error.
            Status st = (*run_pass)(pass + 1);
            NDP_CHECK_MSG(st.ok(), st.ToString().c_str());
          } else {
            regs_.Write(Reg::kStatus,
                        static_cast<uint64_t>(DeviceStatus::kDone));
            if (*done_cb) (*done_cb)(t);
          }
        });
  };
  return (*run_pass)(0);
}

}  // namespace ndp::jafar
