// JAFAR device configuration. The datapath throughput is DERIVED from the
// Aladdin-style schedule of the select kernel (src/accel), never hard-coded:
// DeviceConfig::Derive runs the scheduler and converts its words-per-cycle
// into the device's per-word processing time at the JAFAR clock (2x the DDR3
// data bus clock, §2.2).
#pragma once

#include <cstdint>

#include "accel/schedule.h"
#include "dram/bank.h"
#include "dram/timing.h"
#include "jafar/generation.h"
#include "sim/time.h"
#include "util/status.h"

namespace ndp::jafar {

/// \brief Static configuration of one JAFAR unit (one per DIMM/rank).
struct DeviceConfig {
  /// Which datapath generation this unit instantiates (see generation.h).
  /// The shell is identical across generations; the DatapathModel factory
  /// dispatches on this exactly once, at device construction.
  DeviceGeneration generation = DeviceGeneration::kV1RankIo;

  /// JAFAR generates its own clock at twice the data bus clock (§2.2).
  sim::ClockDomain clock = sim::ClockDomain(625);  // 1.6 GHz for DDR3-1600

  /// Words processed per JAFAR cycle, from the accel schedule (1.0 for the
  /// two-ALU range-filter datapath).
  double words_per_cycle = 1.0;

  /// Output bitmap buffer size n in bits (§2.2: "the output buffer holds n
  /// bits"; written back to DRAM each time it fills).
  uint32_t output_buffer_bits = 4096;

  /// Element width of column values. The paper operates on 64-bit words.
  uint32_t elem_bytes = 8;

  /// Dynamic energy per processed word, femtojoules (from the accel model).
  double energy_per_word_fj = 0.0;

  /// When true, JAFAR requires MR3/MPR rank ownership before running; when
  /// false it runs "politely", issuing commands only while the host memory
  /// controller is idle (the §3.3 no-scheduler scenario).
  bool require_ownership = true;

  /// Fixed per-invocation latency (command register writes, address setup).
  uint32_t invocation_overhead_cycles = 64;

  /// Bitonic sorter block size in elements (§4 Sorting). 1024 x 8 B = 8 KB,
  /// exactly one DRAM row: a block is read, sorted in device SRAM, and
  /// written back as one sorted run.
  uint32_t sort_block_elems = 1024;
  /// Parallel compare-exchange units in the sorter network.
  uint32_t sort_comparators = 16;

  /// Hash-bucket SRAM of the grouped-aggregation engine (§4: hardware limits
  /// the bucket count; larger key domains need hierarchical passes).
  uint32_t groupby_buckets = 256;

  // -- Semijoin probe engine (JSPIM-style; filled by Derive/DeriveBank from
  //    the probe kernel schedule) -------------------------------------------

  /// Bloom hash lanes the probe datapath instantiates. The derivation
  /// schedules MakeProbeKernel(probe_hashes); a ProbeJob whose hash_count
  /// differs is rejected at StartProbe.
  uint32_t probe_hashes = 2;
  /// Join keys the probe datapath evaluates per JAFAR cycle (rank IO path).
  double probe_words_per_cycle = 0.0;
  /// Dynamic energy per probed key, femtojoules.
  double probe_energy_per_word_fj = 0.0;
  /// Same pair through one bank's probe slice (v2 generation).
  double bank_probe_words_per_cycle = 0.0;
  double bank_probe_energy_per_word_fj = 0.0;

  // -- v2 bank-level datapath (valid only when generation == kV2BankLevel;
  //    filled by DeriveBank from the per-bank comparator schedule) ----------

  /// Words one bank's comparator evaluates per JAFAR cycle.
  double bank_words_per_cycle = 0.0;
  /// Dynamic energy per word through one bank comparator, femtojoules.
  double bank_energy_per_word_fj = 0.0;
  /// Command-flow timing pushed into the DRAM model (bus-clock cycles).
  dram::BankFilterTiming bank_filter;
  /// Largest contiguous scan the sequencer covers per invocation, in bytes;
  /// the driver batches min(this, remainder) per device job. 0 means "no
  /// preference" and the driver falls back to its per-page granularity.
  /// DeriveBank sets one row per bank (banks_per_rank * row_size_bytes) —
  /// a job any smaller than a full wave can never arm every bank, so the
  /// v2 datapath would serialize segment by segment.
  uint64_t scan_chunk_bytes = 0;

  /// Device cycles to sort one block of `elems` (<= sort_block_elems)
  /// through the bitonic network: stages(n) = log2(n)*(log2(n)+1)/2, each
  /// stage performing n/2 compare-exchanges on sort_comparators units.
  uint64_t SortBlockCycles(uint32_t elems) const;

  /// Derives a config from the DRAM speed grade and a scheduled datapath.
  static DeviceConfig FromDatapath(const accel::DatapathSummary& datapath,
                                   const dram::DramTiming& timing);

  /// Convenience: schedules `resources` on the range-select kernel and builds
  /// the config from the result.
  static Result<DeviceConfig> Derive(const dram::DramTiming& timing,
                                     const accel::DatapathResources& resources);

  /// Derives a v2 (bank-level) config: the shell and IO-path engines keep the
  /// rank datapath from Derive(), and the per-bank comparator rate, energy
  /// and command-flow timing (fill latency, RD pacing, drain occupancy) come
  /// from scheduling the same select kernel on an area-constrained per-bank
  /// slice of `rank_resources` — never from hand-picked constants.
  static Result<DeviceConfig> DeriveBank(
      const dram::DramTiming& timing, const dram::DramOrganization& org,
      const accel::DatapathResources& rank_resources);

  /// Picoseconds JAFAR needs to process one burst of `words` words.
  sim::Tick BurstProcessingPs(uint32_t words) const;

  /// Same, through one bank's comparator (v2 generation).
  sim::Tick BankBurstProcessingPs(uint32_t words) const;

  /// Picoseconds the probe engine needs for one burst of `words` join keys.
  sim::Tick ProbeBurstProcessingPs(uint32_t words) const;

  /// Same, through one bank's probe slice (v2 generation).
  sim::Tick BankProbeBurstProcessingPs(uint32_t words) const;
};

}  // namespace ndp::jafar
