#include "jafar/jobs.h"

namespace ndp::jafar {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kLt: return "<";
    case CompareOp::kGt: return ">";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGe: return ">=";
    case CompareOp::kBetween: return "between";
  }
  return "?";
}

bool EvalCompare(CompareOp op, int64_t value, int64_t lo, int64_t hi) {
  switch (op) {
    case CompareOp::kEq: return value == lo;
    case CompareOp::kLt: return value < lo;
    case CompareOp::kGt: return value > lo;
    case CompareOp::kLe: return value <= lo;
    case CompareOp::kGe: return value >= lo;
    case CompareOp::kBetween: return value >= lo && value <= hi;
  }
  return false;
}

}  // namespace ndp::jafar
