#include "jafar/jobs.h"

namespace ndp::jafar {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kLt: return "<";
    case CompareOp::kGt: return ">";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGe: return ">=";
    case CompareOp::kBetween: return "between";
  }
  return "?";
}

bool EvalCompare(CompareOp op, int64_t value, int64_t lo, int64_t hi) {
  switch (op) {
    case CompareOp::kEq: return value == lo;
    case CompareOp::kLt: return value < lo;
    case CompareOp::kGt: return value > lo;
    case CompareOp::kLe: return value <= lo;
    case CompareOp::kGe: return value >= lo;
    case CompareOp::kBetween: return value >= lo && value <= hi;
  }
  return false;
}

uint64_t ProbeMix64(uint64_t key, uint32_t hash_index) {
  // splitmix64 finalizer, salted per hash lane. Maps to the probe kernel's
  // kMul mix stage; the shifts/xors are the kBitOp bit-index stage.
  uint64_t x = key + 0x9E3779B97F4A7C15ull * (hash_index + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

uint64_t BloomBitIndex(uint64_t key, uint32_t hash_index,
                       uint64_t filter_words) {
  // filter_words is a power of two, so the modulo is a mask — the cheap
  // combinational form the bit-index stage implements.
  return ProbeMix64(key, hash_index) & (filter_words * 64 - 1);
}

}  // namespace ndp::jafar
