#include "jafar/config.h"

#include <cmath>

#include "util/macros.h"

namespace ndp::jafar {

DeviceConfig DeviceConfig::FromDatapath(const accel::DatapathSummary& datapath,
                                        const dram::DramTiming& timing) {
  DeviceConfig cfg;
  cfg.clock = sim::ClockDomain(timing.tck_ps / 2);  // 2x the data bus clock
  cfg.words_per_cycle = datapath.words_per_cycle;
  cfg.energy_per_word_fj = datapath.energy_per_word_fj;
  return cfg;
}

Result<DeviceConfig> DeviceConfig::Derive(
    const dram::DramTiming& timing, const accel::DatapathResources& resources) {
  accel::LoopKernel kernel = accel::MakeSelectKernel();
  NDP_ASSIGN_OR_RETURN(accel::ScheduleResult sched,
                       accel::ScheduleKernel(kernel, resources, 128));
  return FromDatapath(accel::DatapathSummary::FromSchedule(kernel, sched),
                      timing);
}

uint64_t DeviceConfig::SortBlockCycles(uint32_t elems) const {
  NDP_CHECK(sort_comparators > 0);
  if (elems <= 1) return 1;
  // Round up to the next power of two (the network's natural size).
  uint32_t n = 1;
  uint32_t log2n = 0;
  while (n < elems) {
    n <<= 1;
    ++log2n;
  }
  uint64_t stages = static_cast<uint64_t>(log2n) * (log2n + 1) / 2;
  uint64_t exchanges_per_stage = n / 2;
  uint64_t cycles_per_stage =
      (exchanges_per_stage + sort_comparators - 1) / sort_comparators;
  return stages * cycles_per_stage;
}

sim::Tick DeviceConfig::BurstProcessingPs(uint32_t words) const {
  NDP_CHECK(words_per_cycle > 0);
  double cycles = std::ceil(static_cast<double>(words) / words_per_cycle);
  return static_cast<sim::Tick>(cycles) * clock.period_ps();
}

}  // namespace ndp::jafar
