#include "jafar/config.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace ndp::jafar {

DeviceConfig DeviceConfig::FromDatapath(const accel::DatapathSummary& datapath,
                                        const dram::DramTiming& timing) {
  DeviceConfig cfg;
  cfg.clock = sim::ClockDomain(timing.tck_ps / 2);  // 2x the data bus clock
  cfg.words_per_cycle = datapath.words_per_cycle;
  cfg.energy_per_word_fj = datapath.energy_per_word_fj;
  return cfg;
}

namespace {

/// Schedules the probe kernel on `resources`, widened to at least one
/// multiplier: the baseline select datapath carries none, and the probe
/// engine's hash lanes are exactly the hardware a probe-capable generation
/// adds. Mirrors the select derivation — the rate is scheduled, never picked.
Result<accel::DatapathSummary> ScheduleProbe(
    const accel::DatapathResources& resources, uint32_t hash_count) {
  accel::DatapathResources probe_res = resources;
  probe_res.multipliers = std::max(1u, resources.multipliers);
  accel::LoopKernel kernel = accel::MakeProbeKernel(hash_count);
  NDP_ASSIGN_OR_RETURN(accel::ScheduleResult sched,
                       accel::ScheduleKernel(kernel, probe_res, 128));
  return accel::DatapathSummary::FromSchedule(kernel, sched);
}

}  // namespace

Result<DeviceConfig> DeviceConfig::Derive(
    const dram::DramTiming& timing, const accel::DatapathResources& resources) {
  accel::LoopKernel kernel = accel::MakeSelectKernel();
  NDP_ASSIGN_OR_RETURN(accel::ScheduleResult sched,
                       accel::ScheduleKernel(kernel, resources, 128));
  DeviceConfig cfg = FromDatapath(
      accel::DatapathSummary::FromSchedule(kernel, sched), timing);
  NDP_ASSIGN_OR_RETURN(accel::DatapathSummary probe,
                       ScheduleProbe(resources, cfg.probe_hashes));
  cfg.probe_words_per_cycle = probe.words_per_cycle;
  cfg.probe_energy_per_word_fj = probe.energy_per_word_fj;
  return cfg;
}

Result<DeviceConfig> DeviceConfig::DeriveBank(
    const dram::DramTiming& timing, const dram::DramOrganization& org,
    const accel::DatapathResources& rank_resources) {
  NDP_ASSIGN_OR_RETURN(DeviceConfig cfg, Derive(timing, rank_resources));
  cfg.generation = DeviceGeneration::kV2BankLevel;

  // Per-bank comparator: an area-constrained slice of the rank datapath (one
  // ALU, a quarter of the bit units, single memory port — the comparator sits
  // in each bank's peripheral logic where area is scarce). Scheduling the
  // same select kernel on the narrowed resources yields the per-bank rate.
  accel::DatapathResources bank_res = rank_resources;
  bank_res.alus = 1;
  bank_res.bit_units = std::max(1u, rank_resources.bit_units / 4);
  bank_res.mem_read_ports = 1;
  bank_res.mem_write_ports = 1;
  accel::LoopKernel kernel = accel::MakeSelectKernel();
  NDP_ASSIGN_OR_RETURN(accel::ScheduleResult sched,
                       accel::ScheduleKernel(kernel, bank_res, 128));
  accel::DatapathSummary bank =
      accel::DatapathSummary::FromSchedule(kernel, sched);
  cfg.bank_words_per_cycle = bank.words_per_cycle;
  cfg.bank_energy_per_word_fj = bank.energy_per_word_fj;
  NDP_ASSIGN_OR_RETURN(accel::DatapathSummary bank_probe,
                       ScheduleProbe(bank_res, cfg.probe_hashes));
  cfg.bank_probe_words_per_cycle = bank_probe.words_per_cycle;
  cfg.bank_probe_energy_per_word_fj = bank_probe.energy_per_word_fj;

  // Command-flow timing in bus-clock cycles (JAFAR clock = 2x the bus clock,
  // so two JAFAR cycles fit per bus cycle).
  const uint32_t words_per_burst = org.BytesPerBurst() / cfg.elem_bytes;
  const uint64_t jafar_cycles_per_burst = static_cast<uint64_t>(
      std::ceil(static_cast<double>(words_per_burst) / bank.words_per_cycle));
  const uint32_t bus_cycles_per_burst =
      static_cast<uint32_t>((jafar_cycles_per_burst + 1) / 2);
  // RD pacing: the comparator must finish one burst before taking the next.
  cfg.bank_filter.min_rd_spacing_cycles = std::max(1u, bus_cycles_per_burst);
  // RD to last match bit latched: internal CAS plus the comparator pipeline.
  cfg.bank_filter.fill_latency_cycles = timing.cl + bus_cycles_per_burst;
  // Accumulator drain: one match bit per row element, 64 bits of result bus
  // per cycle.
  const uint32_t row_elems = org.row_size_bytes / cfg.elem_bytes;
  cfg.bank_filter.drain_cycles = std::max(1u, row_elems / 64);
  // One invocation must span a whole wave — one row in every bank — or the
  // per-bank chains degenerate to one segment per job and never overlap.
  cfg.scan_chunk_bytes =
      static_cast<uint64_t>(org.banks_per_rank) * org.row_size_bytes;
  return cfg;
}

uint64_t DeviceConfig::SortBlockCycles(uint32_t elems) const {
  NDP_CHECK(sort_comparators > 0);
  if (elems <= 1) return 1;
  // Round up to the next power of two (the network's natural size).
  uint32_t n = 1;
  uint32_t log2n = 0;
  while (n < elems) {
    n <<= 1;
    ++log2n;
  }
  uint64_t stages = static_cast<uint64_t>(log2n) * (log2n + 1) / 2;
  uint64_t exchanges_per_stage = n / 2;
  uint64_t cycles_per_stage =
      (exchanges_per_stage + sort_comparators - 1) / sort_comparators;
  return stages * cycles_per_stage;
}

sim::Tick DeviceConfig::BurstProcessingPs(uint32_t words) const {
  NDP_CHECK(words_per_cycle > 0);
  double cycles = std::ceil(static_cast<double>(words) / words_per_cycle);
  return static_cast<sim::Tick>(cycles) * clock.period_ps();
}

sim::Tick DeviceConfig::BankBurstProcessingPs(uint32_t words) const {
  NDP_CHECK(bank_words_per_cycle > 0);
  double cycles = std::ceil(static_cast<double>(words) / bank_words_per_cycle);
  return static_cast<sim::Tick>(cycles) * clock.period_ps();
}

sim::Tick DeviceConfig::ProbeBurstProcessingPs(uint32_t words) const {
  NDP_CHECK(probe_words_per_cycle > 0);
  double cycles = std::ceil(static_cast<double>(words) / probe_words_per_cycle);
  return static_cast<sim::Tick>(cycles) * clock.period_ps();
}

sim::Tick DeviceConfig::BankProbeBurstProcessingPs(uint32_t words) const {
  NDP_CHECK(bank_probe_words_per_cycle > 0);
  double cycles =
      std::ceil(static_cast<double>(words) / bank_probe_words_per_cycle);
  return static_cast<sim::Tick>(cycles) * clock.period_ps();
}

}  // namespace ndp::jafar
