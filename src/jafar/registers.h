// Memory-mapped control-register block of a JAFAR unit (§2.2: "The CPU
// controls the operation of JAFAR via memory-mapped accelerator control
// registers and is currently notified of JAFAR operation completion by
// polling a shared memory location"). The driver writes the job description
// into these registers and then writes kGo to COMMAND; STATUS transitions
// BUSY -> DONE, and the same value is mirrored to the completion address for
// CPU polling.
#pragma once

#include <array>
#include <cstdint>

namespace ndp::jafar {

/// Register indices within the block (each register is 64 bits).
enum class Reg : uint32_t {
  kCommand = 0,    ///< write kGo* to launch
  kStatus,         ///< kIdle / kBusy / kDone / kError
  kColBase,        ///< input column/tuple physical base address
  kNumRows,        ///< rows (or tuples) to process
  kCompareOp,      ///< CompareOp for selects
  kRangeLow,
  kRangeHigh,
  kOutBase,        ///< output bitmap / result physical base address
  kFlagAddr,       ///< completion-poll address (0 = none)
  kAux0,           ///< aggregate kind / tuple_bytes / bitmap base
  kAux1,
  kNumRegisters,
};

/// COMMAND values.
enum class Command : uint64_t {
  kNop = 0,
  kGoSelect = 1,
  kGoAggregate = 2,
  kGoProject = 3,
};

/// STATUS values.
enum class DeviceStatus : uint64_t { kIdle = 0, kBusy = 1, kDone = 2, kError = 3 };

/// \brief A plain register file; the Driver is its bus master.
class ControlRegisters {
 public:
  uint64_t Read(Reg r) const { return regs_[static_cast<uint32_t>(r)]; }
  void Write(Reg r, uint64_t v) { regs_[static_cast<uint32_t>(r)] = v; }

 private:
  std::array<uint64_t, static_cast<uint32_t>(Reg::kNumRegisters)> regs_ = {};
};

}  // namespace ndp::jafar
