#include "jafar/device.h"

#include <algorithm>
#include <cstring>

#include "fault/ecc.h"
#include "fault/injector.h"
#include "jafar/checksum.h"
#include "jafar/datapath.h"
#include "util/logging.h"
#include "util/macros.h"

namespace ndp::jafar {

namespace {
constexpr uint32_t kBurstBytes = 64;
constexpr uint32_t kBitsPerBurst = kBurstBytes * 8;  // 512 bitmap bits / burst
}  // namespace

Device::Device(dram::DramSystem* dram, uint32_t channel_index,
               uint32_t rank_index, DeviceConfig config,
               const StatsScope& stats)
    : dram_(dram),
      channel_index_(channel_index),
      rank_index_(rank_index),
      config_(config),
      eq_(dram->event_queue(channel_index)) {
  NDP_CHECK(channel_index < dram->num_channels());
  NDP_CHECK(rank_index < dram->channel(channel_index).num_ranks());
  NDP_CHECK(config_.output_buffer_bits % kBitsPerBurst == 0);
  NDP_CHECK_MSG(config_.elem_bytes == 8 || config_.elem_bytes == 4,
                "JAFAR filters 64-bit words or packed 32-bit halves (§4)");
  pending_bits_.Resize(config_.output_buffer_bits);
  stats.Counter("jobs_completed", &stats_.jobs_completed);
  stats.Counter("jobs_failed", &stats_.jobs_failed);
  stats.Counter("rows_processed", &stats_.rows_processed);
  stats.Counter("matches", &stats_.matches);
  stats.Counter("bursts_read", &stats_.bursts_read);
  stats.Counter("bursts_written", &stats_.bursts_written);
  stats.Counter("activates", &stats_.activates);
  stats.Counter("data_wait_ps", &stats_.data_wait_ps);
  stats.Counter("engine_busy_ps", &stats_.engine_busy_ps);
  stats.Counter("total_busy_ps", &stats_.total_busy_ps);
  stats.Counter("energy_fj", &stats_.energy_fj);
  stats.Counter("polite_backoffs", &stats_.polite_backoffs);
  stats.Counter("refresh_backoffs", &stats_.refresh_backoffs);
  datapath_ = MakeDatapathModel(config_.generation, this);
  datapath_->Attach(stats);
}

Device::~Device() = default;

int64_t Device::ReadValue(uint64_t addr) const {
  if (config_.elem_bytes == 8) {
    return static_cast<int64_t>(dram_->backing_store().Read64(addr));
  }
  int32_t v;
  dram_->backing_store().Read(addr, &v, 4);
  return v;
}

Status Device::CheckRange(uint64_t base, uint64_t len) const {
  if (len == 0) return Status::InvalidArgument("empty range");
  auto first = dram_->mapper().Decode(base);
  NDP_RETURN_NOT_OK(first.status());
  auto last = dram_->mapper().Decode(base + len - 1);
  NDP_RETURN_NOT_OK(last.status());
  if (first.value().channel != channel_index_ ||
      last.value().channel != channel_index_ ||
      first.value().rank != rank_index_ || last.value().rank != rank_index_) {
    return Status::InvalidArgument(
        "job data must be resident on this device's DIMM (channel " +
        std::to_string(channel_index_) + ", rank " +
        std::to_string(rank_index_) + ")");
  }
  return Status::OK();
}

Status Device::CheckIdleAndOwned() const {
  if (busy_) return Status::DeviceBusy("a job is already executing");
  if (config_.require_ownership &&
      dram_->channel(channel_index_).rank(rank_index_).owner() !=
          dram::RankOwner::kAccelerator) {
    return Status::FailedPrecondition(
        "rank ownership not held: set MR3/MPR before invoking JAFAR "
        "(§2.2, Coordinating DRAM Access)");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fault handling & recovery

void Device::ScheduleAtGuarded(sim::Tick t, std::function<void()> fn) {
  uint64_t epoch = job_epoch_;
  eq_->ScheduleAt(t, [this, epoch, fn = std::move(fn)] {
    if (epoch == job_epoch_) fn();
  });
}

void Device::ScheduleAfterGuarded(sim::Tick delta, std::function<void()> fn) {
  ScheduleAtGuarded(eq_->Now() + delta, std::move(fn));
}

void Device::AbortJob() {
  if (!busy_) return;  // completion won the race against the watchdog
  datapath_->OnJobTeardown();  // release generation-held DRAM state
  if (probe_.has_value()) {
    // The abort may land mid filter-load; close the shadow window (idempotent).
    channel().NoteProbeFilterLoadDone(rank_index_);
  }
  ++job_epoch_;        // strand every in-flight sequencer event
  stats_.total_busy_ps += eq_->Now();  // settle the negative start stamp
  ++stats_.jobs_failed;
  busy_ = false;
  select_.reset();
  aggregate_.reset();
  project_.reset();
  rowstore_.reset();
  sort_.reset();
  groupby_.reset();
  probe_.reset();
  on_done_ = nullptr;  // the aborting driver already gave up on this callback
  last_job_status_ = Status::Internal("job aborted by driver reset");
}

void Device::FailJob(Status st) {
  NDP_CHECK(busy_);
  datapath_->OnJobTeardown();
  if (probe_.has_value()) {
    channel().NoteProbeFilterLoadDone(rank_index_);
  }
  ++job_epoch_;
  sim::Tick now = eq_->Now();
  stats_.total_busy_ps += now;
  ++stats_.jobs_failed;
  busy_ = false;
  select_.reset();
  aggregate_.reset();
  project_.reset();
  rowstore_.reset();
  sort_.reset();
  groupby_.reset();
  probe_.reset();
  last_job_status_ = std::move(st);
  auto cb = std::move(on_done_);
  on_done_ = nullptr;
  if (cb) cb(now);
}

bool Device::MaybeInjectHang() {
#ifdef NDP_FAULT_INJECT
  if (injector_ != nullptr && injector_->DrawHangAtDispatch()) {
    // The command sequencer wedges before its first step: the device stays
    // busy with no pending events. Only the driver watchdog (AbortJob) can
    // recover it.
    return true;
  }
#endif
  return false;
}

bool Device::HandleReadFault(uint64_t burst_addr) {
#ifdef NDP_FAULT_INJECT
  fault::ReadFault rf = injector_->DrawReadBurst();
  if (rf == fault::ReadFault::kNone) return true;
  // Model the flip on the burst's first 64-bit word through the SECDED
  // (72,64) code the DIMM would carry.
  uint64_t word = dram_->backing_store().Read64(burst_addr);
  uint8_t check = fault::EccEncode(word);
  if (rf == fault::ReadFault::kCorrectable) {
    uint32_t pos = injector_->DrawEccBitPosition();
    fault::EccCodeword flipped = fault::EccFlipBit(word, check, pos);
    fault::EccDecoded dec = fault::EccDecode(flipped.data, flipped.check);
    NDP_CHECK_MSG(dec.result == fault::EccResult::kCorrected &&
                      dec.data == word,
                  "SECDED failed to correct a single-bit flip");
    // Corrected in flight: the job sees clean data, only the scrub log knows.
    channel().rank(rank_index_).NoteEccCorrected();
    return true;
  }
  uint32_t a = 0, b = 0;
  injector_->DrawEccDoubleFlip(&a, &b);
  fault::EccCodeword flipped = fault::EccFlipBit(word, check, a);
  flipped = fault::EccFlipBit(flipped.data, flipped.check, b);
  fault::EccDecoded dec = fault::EccDecode(flipped.data, flipped.check);
  NDP_CHECK_MSG(dec.result == fault::EccResult::kUncorrectable,
                "SECDED failed to detect a double-bit flip");
  channel().rank(rank_index_).NoteEccUncorrectable();
  FailJob(Status::Internal("uncorrectable ECC error on read burst"));
  return false;
#else
  (void)burst_addr;
  return true;
#endif
}

// ---------------------------------------------------------------------------
// Sequencer

void Device::IssueWhenReady(dram::Command cmd,
                            std::function<void(sim::Tick)> next,
                            std::function<void()> on_stale,
                            bool defer_to_refresh) {
  // In polite (no-scheduler) mode, JAFAR may only use the channel while the
  // host memory controller is idle (§3.3).
  if (!config_.require_ownership &&
      dram_->controller(channel_index_).HasPendingWork()) {
    ++stats_.polite_backoffs;
    ScheduleAfterGuarded(
        BusCycles(8),
        [this, cmd, next = std::move(next), on_stale, defer_to_refresh] {
          IssueWhenReady(cmd, next, on_stale, defer_to_refresh);
        });
    return;
  }
  // Refresh outranks rank ownership: when the host controller is stealing the
  // rank back for an overdue REF (its postponement budget nearly spent), stop
  // competing for the command bus — fighting the precharge drain would only
  // ping-pong ACT/PRE until the retention deadline. Resume (and re-evaluate
  // bank state) once the refresh completes. Callers mid-way through a chain
  // the controller cannot interrupt anyway (v2 holds armed banks REF must
  // wait out) pass defer_to_refresh=false and yield at their own barriers —
  // deferring here would deadlock against the controller's armed-bank wait.
  if (defer_to_refresh &&
      dram_->controller(channel_index_).RefreshClaims(rank_index_)) {
    ++stats_.refresh_backoffs;
    ScheduleAfterGuarded(
        BusCycles(8),
        [this, cmd, next = std::move(next), on_stale, defer_to_refresh] {
          IssueWhenReady(cmd, next, on_stale, defer_to_refresh);
        });
    return;
  }
  // Bank-state validity may have changed between scheduling and issue when a
  // third party shares the rank (host refresh or traffic in polite mode):
  // column commands need their row open, ACT needs the bank closed.
  if (cmd.type == dram::CommandType::kRead ||
      cmd.type == dram::CommandType::kWrite) {
    const dram::Bank& bank = channel().rank(rank_index_).bank(cmd.bank);
    if (!bank.has_open_row() || bank.open_row() != cmd.row) {
      NDP_CHECK_MSG(on_stale != nullptr, "row closed under exclusive access");
      on_stale();
      return;
    }
  } else if (cmd.type == dram::CommandType::kActivate) {
    const dram::Bank& bank = channel().rank(rank_index_).bank(cmd.bank);
    if (bank.has_open_row()) {
      NDP_CHECK_MSG(on_stale != nullptr, "bank opened under exclusive access");
      on_stale();
      return;
    }
  }
  sim::ClockDomain bus = channel().bus_clock();
  sim::Tick t = std::max(channel().EarliestIssue(cmd),
                         bus.NextEdgeAtOrAfter(eq_->Now()));
  if (t == eq_->Now()) {
    auto done = channel().Issue(cmd, t);
    NDP_CHECK_MSG(done.ok(), done.status().ToString().c_str());
    next(done.value());
    return;
  }
  ScheduleAtGuarded(
      t, [this, cmd, next = std::move(next), on_stale, defer_to_refresh] {
        // Conditions may have shifted (other-rank traffic on the shared
        // command bus, host activity in polite mode): re-evaluate.
        IssueWhenReady(cmd, next, on_stale, defer_to_refresh);
      });
}

void Device::OpenRow(const dram::DramLocation& loc, std::function<void()> next) {
  dram::Bank& bank = channel().rank(rank_index_).bank(loc.bank);
  if (bank.has_open_row() && bank.open_row() == loc.row) {
    next();
    return;
  }
  if (bank.has_open_row()) {
    dram::Command pre{dram::CommandType::kPrecharge, rank_index_, loc.bank};
    IssueWhenReady(pre, [this, loc, next = std::move(next)](sim::Tick) {
      OpenRow(loc, next);
    });
    return;
  }
  dram::Command act{dram::CommandType::kActivate, rank_index_, loc.bank,
                    loc.row};
  ++stats_.activates;
  auto retry = [this, loc, next]() { OpenRow(loc, next); };
  IssueWhenReady(act, [next = std::move(next)](sim::Tick) { next(); },
                 /*on_stale=*/retry);
}

void Device::ReadBurst(uint64_t addr, std::function<void(sim::Tick)> next) {
  auto loc = dram_->mapper().Decode(addr).ValueOrDie();
  auto attempt = std::make_shared<std::function<void()>>();
  // The stored function holds only a weak self-reference (a strong capture
  // would be a shared_ptr cycle that leaks the whole continuation chain);
  // each invocation re-locks, and the in-flight DRAM callbacks below hold
  // the strong references that keep retry alive while the burst is pending.
  std::weak_ptr<std::function<void()>> weak = attempt;
  *attempt = [this, loc, addr, next = std::move(next), weak]() {
    auto self = weak.lock();
    OpenRow(loc, [this, loc, addr, next, self]() {
      dram::Command rd{dram::CommandType::kRead, rank_index_, loc.bank,
                       loc.row, loc.burst_col};
      IssueWhenReady(
          rd,
          [this, addr, next](sim::Tick done) {
            ++stats_.bursts_read;
            stats_.data_wait_ps += BusCycles(timing().cl);
#ifdef NDP_FAULT_INJECT
            if (injector_ != nullptr && !HandleReadFault(addr)) {
              return;  // uncorrectable ECC: FailJob already ran
            }
#endif
            next(done);
          },
          /*on_stale=*/[self] { (*self)(); });
    });
  };
  (*attempt)();
}

void Device::WriteBurst(uint64_t addr, std::function<void(sim::Tick)> next) {
  auto loc = dram_->mapper().Decode(addr).ValueOrDie();
  auto attempt = std::make_shared<std::function<void()>>();
  // Weak self-reference for the same cycle-avoidance reason as ReadBurst.
  std::weak_ptr<std::function<void()>> weak = attempt;
  *attempt = [this, loc, next = std::move(next), weak]() {
    auto self = weak.lock();
    OpenRow(loc, [this, loc, next, self]() {
      dram::Command wr{dram::CommandType::kWrite, rank_index_, loc.bank,
                       loc.row, loc.burst_col};
      IssueWhenReady(
          wr,
          [this, next](sim::Tick done) {
            ++stats_.bursts_written;
            next(done);
          },
          /*on_stale=*/[self] { (*self)(); });
    });
  };
  (*attempt)();
}

// ---------------------------------------------------------------------------
// Select / row-store

Status Device::StartSelect(const SelectJob& job,
                           std::function<void(sim::Tick)> on_done) {
  NDP_RETURN_NOT_OK(CheckIdleAndOwned());
  NDP_RETURN_NOT_OK(CheckRange(job.col_base, job.num_rows * config_.elem_bytes));
  uint64_t bitmap_bytes = (job.num_rows + 7) / 8;
  NDP_RETURN_NOT_OK(CheckRange(job.out_base, bitmap_bytes));
  if (job.col_base % kBurstBytes != 0 || job.out_base % kBurstBytes != 0) {
    return Status::InvalidArgument("col_base/out_base must be 64 B aligned");
  }
  busy_ = true;
  select_ = job;
  on_done_ = std::move(on_done);
  cursor_rows_ = 0;
  engine_ready_at_ = eq_->Now();
  pending_bits_.ClearAll();
  pending_bit_count_ = 0;
  bitmap_write_cursor_ = 0;
  last_matches_ = 0;
  last_job_status_ = Status::OK();
  last_result_checksum_ = kChecksumInit;
  stats_.total_busy_ps -= eq_->Now();  // settled in FinishJob
  if (MaybeInjectHang()) return Status::OK();
  ScheduleAfterGuarded(config_.invocation_overhead_cycles *
                           config_.clock.period_ps(),
                       [this] { datapath_->BeginScan(); });
  return Status::OK();
}

Status Device::StartRowStore(const RowStoreJob& job,
                             std::function<void(sim::Tick)> on_done) {
  NDP_RETURN_NOT_OK(CheckIdleAndOwned());
  if (job.tuple_bytes == 0 || job.tuple_bytes % 8 != 0) {
    return Status::InvalidArgument("tuple_bytes must be a positive multiple of 8");
  }
  if (job.predicates.empty()) {
    return Status::InvalidArgument("row-store job needs at least one predicate");
  }
  for (const RowPredicate& p : job.predicates) {
    if (p.attr_offset_bytes + 8 > job.tuple_bytes) {
      return Status::InvalidArgument("predicate attribute outside tuple");
    }
  }
  NDP_RETURN_NOT_OK(
      CheckRange(job.tuple_base, job.num_tuples * job.tuple_bytes));
  NDP_RETURN_NOT_OK(CheckRange(job.out_base, (job.num_tuples + 7) / 8));
  if (job.tuple_base % kBurstBytes != 0 || job.out_base % kBurstBytes != 0) {
    return Status::InvalidArgument("tuple_base/out_base must be 64 B aligned");
  }
  busy_ = true;
  rowstore_ = job;
  on_done_ = std::move(on_done);
  cursor_rows_ = 0;
  engine_ready_at_ = eq_->Now();
  pending_bits_.ClearAll();
  pending_bit_count_ = 0;
  bitmap_write_cursor_ = 0;
  last_matches_ = 0;
  last_job_status_ = Status::OK();
  last_result_checksum_ = kChecksumInit;
  stats_.total_busy_ps -= eq_->Now();
  if (MaybeInjectHang()) return Status::OK();
  ScheduleAfterGuarded(config_.invocation_overhead_cycles *
                           config_.clock.period_ps(),
                       [this] { datapath_->BeginScan(); });
  return Status::OK();
}

Status Device::StartProbe(const ProbeJob& job,
                          std::function<void(sim::Tick)> on_done) {
  NDP_RETURN_NOT_OK(CheckIdleAndOwned());
  if (config_.elem_bytes != 8) {
    return Status::Unimplemented("probe engine hashes 64-bit join keys");
  }
  if (job.hash_count != config_.probe_hashes) {
    return Status::InvalidArgument(
        "hash_count does not match the derived probe datapath (" +
        std::to_string(config_.probe_hashes) + " lanes)");
  }
  if (job.filter_words == 0 ||
      (job.filter_words & (job.filter_words - 1)) != 0) {
    return Status::InvalidArgument(
        "filter_words must be a power of two (bit index is a mask)");
  }
  if (config_.probe_words_per_cycle <= 0.0) {
    return Status::Unimplemented("datapath has no scheduled probe kernel");
  }
  NDP_RETURN_NOT_OK(CheckRange(job.col_base, job.num_rows * 8));
  NDP_RETURN_NOT_OK(CheckRange(job.out_base, (job.num_rows + 7) / 8));
  NDP_RETURN_NOT_OK(CheckRange(job.filter_base, job.filter_words * 8));
  if (job.col_base % kBurstBytes != 0 || job.out_base % kBurstBytes != 0 ||
      job.filter_base % kBurstBytes != 0) {
    return Status::InvalidArgument(
        "col_base/out_base/filter_base must be 64 B aligned");
  }
  busy_ = true;
  probe_ = job;
  on_done_ = std::move(on_done);
  cursor_rows_ = 0;
  engine_ready_at_ = eq_->Now();
  pending_bits_.ClearAll();
  pending_bit_count_ = 0;
  bitmap_write_cursor_ = 0;
  last_matches_ = 0;
  last_job_status_ = Status::OK();
  last_result_checksum_ = kChecksumInit;
  stats_.total_busy_ps -= eq_->Now();  // settled in FinishJob
  if (MaybeInjectHang()) return Status::OK();
  // BeginProbe (datapath base, generation-neutral) streams the Bloom image
  // into the probe SRAM before handing over to the generation's scan loop.
  ScheduleAfterGuarded(config_.invocation_overhead_cycles *
                           config_.clock.period_ps(),
                       [this] { datapath_->BeginProbe(); });
  return Status::OK();
}

bool Device::EvalProbeKey(int64_t key) const {
  const ProbeJob& job = *probe_;
  for (uint32_t h = 0; h < job.hash_count; ++h) {
    uint64_t bit =
        BloomBitIndex(static_cast<uint64_t>(key), h, job.filter_words);
    if (((probe_sram_[bit / 64] >> (bit % 64)) & 1) == 0) return false;
  }
  return true;
}

// The scan sequencer itself (the former SelectStep loop) lives in the
// generation's DatapathModel: datapath_v1.cc keeps the rank-IO loop
// unchanged, datapath_v2.cc replaces it with bank-parallel waves.

void Device::ContinueWhenEngineReady(void (Device::*step)()) {
  // Throttle command issue so a slow datapath (words_per_cycle < 1) does not
  // overrun its input FIFO: the next burst's data (which completes CL+tBURST
  // after its command) should not arrive before the engine can take it.
  sim::Tick pipe_ps = BusCycles(timing().cl + timing().tburst);
  sim::Tick earliest =
      engine_ready_at_ > pipe_ps ? engine_ready_at_ - pipe_ps : 0;
  if (earliest > eq_->Now()) {
    ScheduleAtGuarded(earliest, [this, step] { (this->*step)(); });
  } else {
    (this->*step)();
  }
}

void Device::FlushBitmap(std::function<void()> next) {
  if (pending_bit_count_ == 0) {
    next();
    return;
  }
  uint64_t out_base;
  bool masked = false;
  uint64_t mask = ~uint64_t{0};
  if (rowstore_.has_value()) {
    out_base = rowstore_->out_base;
  } else if (probe_.has_value()) {
    // Probe bitmaps are always whole-word owned by this device (the runtime
    // chunks on page boundaries), so no masked merge is needed.
    out_base = probe_->out_base;
  } else {
    out_base = select_->out_base;
    masked = select_->masked_writeback;
    mask = masked ? select_->writeback_mask : ~uint64_t{0};
  }

  uint64_t bytes = (pending_bit_count_ + 7) / 8;
  uint64_t addr = out_base + bitmap_write_cursor_;
  // Functional write of the buffered bits (word-at-a-time to honour masks).
  for (uint64_t w = 0; w * 8 < bytes; ++w) {
    uint64_t value = pending_bits_.Word(w);
    if (masked || (bytes - w * 8) < 8 ||
        pending_bit_count_ < (w + 1) * 64) {
      // Partial word or masked layout: read-modify-write.
      uint64_t keep_mask = mask;
      if (pending_bit_count_ < (w + 1) * 64) {
        uint64_t valid = pending_bit_count_ - w * 64;
        keep_mask &= (valid >= 64) ? ~uint64_t{0}
                                   : ((uint64_t{1} << valid) - 1);
      }
      uint64_t old = dram_->backing_store().Read64(addr + w * 8);
      value = (old & ~keep_mask) | (value & keep_mask);
    }
    dram_->backing_store().Write64(addr + w * 8, value);
    // Fold the final written word into the writeback checksum: the driver
    // re-reads these exact words from DRAM, so any later corruption shows.
    last_result_checksum_ = ChecksumMix(last_result_checksum_, value);
  }

#ifdef NDP_FAULT_INJECT
  if (injector_ != nullptr && injector_->DrawCorruptAtFlush()) {
    // Flip one already-written bit after the checksum was taken — exactly
    // what a flaky writeback path would do. The driver's verification pass
    // catches the mismatch and retries the page.
    uint64_t bit = injector_->DrawCorruptBit(pending_bit_count_);
    uint64_t waddr = addr + (bit / 64) * 8;
    uint64_t word = dram_->backing_store().Read64(waddr);
    dram_->backing_store().Write64(waddr, word ^ (uint64_t{1} << (bit % 64)));
  }
#endif

  // Timing: one WR burst per 64 B of bitmap.
  uint64_t bursts = (bytes + kBurstBytes - 1) / kBurstBytes;
  bitmap_write_cursor_ += bytes;
  pending_bits_.ClearAll();
  pending_bit_count_ = 0;
  WriteBurstChain(addr - addr % kBurstBytes, bursts, std::move(next));
}

void Device::WriteBurstChain(uint64_t addr, uint64_t bursts,
                             std::function<void()> next) {
  if (bursts == 0) {
    next();
    return;
  }
  WriteBurst(addr, [this, addr, bursts, next = std::move(next)](sim::Tick) {
    WriteBurstChain(addr + kBurstBytes, bursts - 1, next);
  });
}

void Device::FinishJob() {
  sim::Tick now = eq_->Now();
  datapath_->OnJobTeardown();  // no-op after a clean drain; keeps the invariant
  ++job_epoch_;  // hygiene: no continuation of this job may fire after done
  stats_.total_busy_ps += now;
  ++stats_.jobs_completed;
  busy_ = false;
  select_.reset();
  aggregate_.reset();
  project_.reset();
  rowstore_.reset();
  sort_.reset();
  groupby_.reset();
  probe_.reset();
  auto cb = std::move(on_done_);
  on_done_ = nullptr;
#ifdef NDP_FAULT_INJECT
  if (injector_ != nullptr && injector_->DrawDropCompletion()) {
    // The job finished and its results are in DRAM, but the completion
    // signal is lost. The driver's watchdog times out and retries.
    cb = nullptr;
  }
#endif
  if (cb) cb(now);
}

// ---------------------------------------------------------------------------
// Sort (§4 "Sorting": fixed-function bitonic block sorter)

Status Device::StartSort(const SortJob& job,
                         std::function<void(sim::Tick)> on_done) {
  NDP_RETURN_NOT_OK(CheckIdleAndOwned());
  if (config_.elem_bytes != 8) {
    return Status::Unimplemented("sort engine operates on 64-bit words");
  }
  NDP_RETURN_NOT_OK(CheckRange(job.col_base, job.num_rows * 8));
  NDP_RETURN_NOT_OK(CheckRange(job.out_base, job.num_rows * 8));
  if (job.col_base % kBurstBytes != 0 || job.out_base % kBurstBytes != 0) {
    return Status::InvalidArgument("sort addresses must be 64 B aligned");
  }
  busy_ = true;
  sort_ = job;
  on_done_ = std::move(on_done);
  cursor_rows_ = 0;
  engine_ready_at_ = eq_->Now();
  last_job_status_ = Status::OK();
  stats_.total_busy_ps -= eq_->Now();
  if (MaybeInjectHang()) return Status::OK();
  ScheduleAfterGuarded(config_.invocation_overhead_cycles *
                           config_.clock.period_ps(),
                       [this] { SortStep(); });
  return Status::OK();
}

void Device::ReadBurstChain(uint64_t addr, uint64_t bursts,
                            std::function<void(sim::Tick)> on_last_data) {
  NDP_CHECK(bursts > 0);
  ReadBurst(addr, [this, addr, bursts,
                   on_last_data = std::move(on_last_data)](sim::Tick done) {
    if (bursts == 1) {
      on_last_data(done);
    } else {
      ReadBurstChain(addr + kBurstBytes, bursts - 1, on_last_data);
    }
  });
}

void Device::SortStep() {
  const SortJob& job = *sort_;
  if (cursor_rows_ >= job.num_rows) {
    FinishJob();
    return;
  }
  uint64_t block_rows = std::min<uint64_t>(config_.sort_block_elems,
                                           job.num_rows - cursor_rows_);
  uint64_t in_addr = job.col_base + cursor_rows_ * 8;
  uint64_t out_addr = job.out_base + cursor_rows_ * 8;
  uint64_t bursts = (block_rows * 8 + kBurstBytes - 1) / kBurstBytes;
  // 1. Stream the block into device SRAM.
  ReadBurstChain(in_addr, bursts, [this, block_rows, in_addr, out_addr,
                                   bursts](sim::Tick last_data) {
    // 2. Run the bitonic network (functional model: an exact sort of the
    //    block; timing: the network's stage count on the comparator array).
    std::vector<int64_t> block(block_rows);
    dram_->backing_store().Read(in_addr, block.data(), block_rows * 8);
    if (sort_->descending) {
      std::sort(block.begin(), block.end(), std::greater<int64_t>());
    } else {
      std::sort(block.begin(), block.end());
    }
    dram_->backing_store().Write(out_addr, block.data(), block_rows * 8);

    uint64_t sort_cycles =
        config_.SortBlockCycles(static_cast<uint32_t>(block_rows));
    sim::Tick start = std::max(last_data, engine_ready_at_);
    sim::Tick proc = sort_cycles * config_.clock.period_ps();
    engine_ready_at_ = start + proc;
    stats_.engine_busy_ps += proc;
    stats_.rows_processed += block_rows;
    stats_.energy_fj +=
        config_.energy_per_word_fj * static_cast<double>(block_rows);

    cursor_rows_ += block_rows;
    // 3. Write the sorted run back once the network finishes, then continue
    //    with the next block.
    sim::Tick when = engine_ready_at_;
    uint64_t out_bursts = bursts;
    uint64_t out_base_addr = out_addr;
    ScheduleAtGuarded(when, [this, out_base_addr, out_bursts] {
      WriteBurstChain(out_base_addr, out_bursts, [this] { SortStep(); });
    });
  });
}

// ---------------------------------------------------------------------------
// Aggregate

Status Device::StartAggregate(const AggregateJob& job,
                              std::function<void(sim::Tick)> on_done) {
  NDP_RETURN_NOT_OK(CheckIdleAndOwned());
  if (config_.elem_bytes != 8) {
    return Status::Unimplemented("aggregate engine operates on 64-bit words");
  }
  NDP_RETURN_NOT_OK(CheckRange(job.col_base, job.num_rows * config_.elem_bytes));
  NDP_RETURN_NOT_OK(CheckRange(job.out_addr, 8));
  if (job.bitmap_base != 0) {
    NDP_RETURN_NOT_OK(CheckRange(job.bitmap_base, (job.num_rows + 7) / 8));
  }
  if (job.col_base % kBurstBytes != 0) {
    return Status::InvalidArgument("col_base must be 64 B aligned");
  }
  busy_ = true;
  aggregate_ = job;
  on_done_ = std::move(on_done);
  cursor_rows_ = 0;
  engine_ready_at_ = eq_->Now();
  switch (job.kind) {
    case AggKind::kSum:
    case AggKind::kCount: agg_acc_ = 0; break;
    case AggKind::kMin: agg_acc_ = INT64_MAX; break;
    case AggKind::kMax: agg_acc_ = INT64_MIN; break;
  }
  last_job_status_ = Status::OK();
  stats_.total_busy_ps -= eq_->Now();
  if (MaybeInjectHang()) return Status::OK();
  ScheduleAfterGuarded(config_.invocation_overhead_cycles *
                           config_.clock.period_ps(),
                       [this] { AggregateStep(); });
  return Status::OK();
}

void Device::AggregateStep() {
  const AggregateJob& job = *aggregate_;
  if (cursor_rows_ >= job.num_rows) {
    dram_->backing_store().Write64(job.out_addr,
                                   static_cast<uint64_t>(agg_acc_));
    WriteBurstChain(job.out_addr - job.out_addr % kBurstBytes, 1,
                    [this] { FinishJob(); });
    return;
  }
  // One bitmap burst covers 512 rows; fetch it lazily when filtering.
  bool need_bitmap =
      job.bitmap_base != 0 && cursor_rows_ % kBitsPerBurst == 0;
  auto process_col_burst = [this]() {
    const AggregateJob& j = *aggregate_;
    uint64_t burst_addr = j.col_base + cursor_rows_ * config_.elem_bytes;
    burst_addr -= burst_addr % kBurstBytes;
    ReadBurst(burst_addr, [this](sim::Tick data_done) {
      const AggregateJob& jb = *aggregate_;
      uint64_t rows_here = std::min<uint64_t>(
          kBurstBytes / config_.elem_bytes, jb.num_rows - cursor_rows_);
      for (uint64_t r = cursor_rows_; r < cursor_rows_ + rows_here; ++r) {
        if (jb.bitmap_base != 0) {
          uint64_t word = dram_->backing_store().Read64(
              jb.bitmap_base + (r / 64) * 8);
          if (((word >> (r % 64)) & 1) == 0) continue;
        }
        int64_t v = static_cast<int64_t>(
            dram_->backing_store().Read64(jb.col_base + r * config_.elem_bytes));
        switch (jb.kind) {
          case AggKind::kSum: agg_acc_ += v; break;
          case AggKind::kCount: agg_acc_ += 1; break;
          case AggKind::kMin: agg_acc_ = std::min(agg_acc_, v); break;
          case AggKind::kMax: agg_acc_ = std::max(agg_acc_, v); break;
        }
        ++stats_.matches;
      }
      stats_.rows_processed += rows_here;
      cursor_rows_ += rows_here;
      uint32_t words = kBurstBytes / 8;
      sim::Tick start = std::max(data_done, engine_ready_at_);
      sim::Tick proc = config_.BurstProcessingPs(words);
      engine_ready_at_ = start + proc;
      stats_.engine_busy_ps += proc;
      stats_.energy_fj += config_.energy_per_word_fj * words;
      ContinueAggregateWhenEngineReady();
    });
  };
  if (need_bitmap) {
    uint64_t bm_addr = job.bitmap_base + (cursor_rows_ / 8);
    bm_addr -= bm_addr % kBurstBytes;
    ReadBurst(bm_addr, [process_col_burst](sim::Tick) { process_col_burst(); });
  } else {
    process_col_burst();
  }
}

void Device::ContinueAggregateWhenEngineReady() {
  ContinueWhenEngineReady(&Device::AggregateStep);
}

// ---------------------------------------------------------------------------
// Grouped aggregation (§4: bucket-limited, hierarchical passes)

Status Device::StartGroupBy(const GroupByJob& job,
                            std::function<void(sim::Tick)> on_done) {
  NDP_RETURN_NOT_OK(CheckIdleAndOwned());
  if (config_.elem_bytes != 8) {
    return Status::Unimplemented("group-by engine operates on 64-bit words");
  }
  NDP_RETURN_NOT_OK(CheckRange(job.key_base, job.num_rows * 8));
  NDP_RETURN_NOT_OK(CheckRange(job.val_base, job.num_rows * 8));
  NDP_RETURN_NOT_OK(
      CheckRange(job.out_base, config_.groupby_buckets * 16));
  if (job.bitmap_base != 0) {
    NDP_RETURN_NOT_OK(CheckRange(job.bitmap_base, (job.num_rows + 7) / 8));
    if (job.bitmap_base % kBurstBytes != 0) {
      return Status::InvalidArgument("bitmap_base must be 64 B aligned");
    }
  }
  if (job.key_base % kBurstBytes != 0 || job.val_base % kBurstBytes != 0 ||
      job.out_base % kBurstBytes != 0) {
    return Status::InvalidArgument("group-by addresses must be 64 B aligned");
  }
  busy_ = true;
  groupby_ = job;
  on_done_ = std::move(on_done);
  cursor_rows_ = 0;
  engine_ready_at_ = eq_->Now();
  int64_t init = 0;
  switch (job.kind) {
    case AggKind::kSum:
    case AggKind::kCount: init = 0; break;
    case AggKind::kMin: init = INT64_MAX; break;
    case AggKind::kMax: init = INT64_MIN; break;
  }
  groupby_agg_.assign(config_.groupby_buckets, init);
  groupby_count_.assign(config_.groupby_buckets, 0);
  last_job_status_ = Status::OK();
  stats_.total_busy_ps -= eq_->Now();
  if (MaybeInjectHang()) return Status::OK();
  ScheduleAfterGuarded(config_.invocation_overhead_cycles *
                           config_.clock.period_ps(),
                       [this] { GroupByStep(); });
  return Status::OK();
}

void Device::GroupByStep() {
  const GroupByJob& job = *groupby_;
  if (cursor_rows_ >= job.num_rows) {
    // Dump the bucket SRAM back to DRAM: buckets * 16 bytes.
    for (uint32_t b = 0; b < config_.groupby_buckets; ++b) {
      dram_->backing_store().Write64(job.out_base + b * 16,
                                     static_cast<uint64_t>(groupby_agg_[b]));
      dram_->backing_store().Write64(
          job.out_base + b * 16 + 8,
          static_cast<uint64_t>(groupby_count_[b]));
    }
    uint64_t bursts =
        (config_.groupby_buckets * 16 + kBurstBytes - 1) / kBurstBytes;
    WriteBurstChain(job.out_base, bursts, [this] { FinishJob(); });
    return;
  }
  // Stream the two columns in DRAM-row-sized chunks (8 KB = 1024 values):
  // alternating single bursts between the columns would ping-pong two rows
  // of one bank (the columns often alias to the same bank), paying a
  // precharge/activate pair per burst. Whole-row chunks amortize the row
  // switch across 128 bursts — the device's SRAM double-buffers one row of
  // keys against one row of values.
  uint64_t chunk_rows = std::min<uint64_t>(1024, job.num_rows - cursor_rows_);
  uint64_t bursts = (chunk_rows * 8 + kBurstBytes - 1) / kBurstBytes;
  uint64_t key_addr = job.key_base + cursor_rows_ * 8;
  uint64_t val_addr = job.val_base + cursor_rows_ * 8;
  auto read_columns = [this, key_addr, val_addr, bursts, chunk_rows]() {
    ReadBurstChain(key_addr, bursts, [this, val_addr, bursts,
                                      chunk_rows](sim::Tick) {
      ReadBurstChain(val_addr, bursts, [this,
                                        chunk_rows](sim::Tick data_done) {
        ProcessGroupByChunk(chunk_rows, data_done);
      });
    });
  };
  if (job.bitmap_base != 0) {
    // One bitmap burst covers 512 rows; fetch the chunk's slice first.
    uint64_t bm_addr = job.bitmap_base + cursor_rows_ / 8;
    bm_addr -= bm_addr % kBurstBytes;
    uint64_t bm_bursts = (chunk_rows + kBitsPerBurst - 1) / kBitsPerBurst;
    ReadBurstChain(bm_addr, bm_bursts,
                   [read_columns](sim::Tick) { read_columns(); });
  } else {
    read_columns();
  }
}

void Device::ProcessGroupByChunk(uint64_t chunk_rows, sim::Tick data_done) {
  const GroupByJob& j = *groupby_;
  uint64_t rows_here = chunk_rows;
  for (uint64_t r = cursor_rows_; r < cursor_rows_ + rows_here; ++r) {
    if (j.bitmap_base != 0) {
      uint64_t word =
          dram_->backing_store().Read64(j.bitmap_base + (r / 64) * 8);
      if (((word >> (r % 64)) & 1) == 0) continue;
    }
    int64_t key =
        static_cast<int64_t>(dram_->backing_store().Read64(j.key_base + r * 8));
    int64_t bucket = key - j.key_offset;
    if (bucket < 0 || bucket >= static_cast<int64_t>(config_.groupby_buckets)) {
      continue;  // outside this hierarchical pass's window
    }
    int64_t v = static_cast<int64_t>(
        dram_->backing_store().Read64(j.val_base + r * 8));
    switch (j.kind) {
      case AggKind::kSum: groupby_agg_[bucket] += v; break;
      case AggKind::kCount: groupby_agg_[bucket] += 1; break;
      case AggKind::kMin:
        groupby_agg_[bucket] = std::min(groupby_agg_[bucket], v);
        break;
      case AggKind::kMax:
        groupby_agg_[bucket] = std::max(groupby_agg_[bucket], v);
        break;
    }
    ++groupby_count_[bucket];
    ++stats_.matches;
  }
  stats_.rows_processed += rows_here;
  cursor_rows_ += rows_here;
  // Engine: one key/value pair per cycle (hash + accumulate); chunk
  // processing overlaps the next chunk's reads via the usual throttle.
  uint32_t words = static_cast<uint32_t>(2 * rows_here);
  sim::Tick start = std::max(data_done, engine_ready_at_);
  sim::Tick proc = config_.BurstProcessingPs(words);
  engine_ready_at_ = start + proc;
  stats_.engine_busy_ps += proc;
  stats_.energy_fj += config_.energy_per_word_fj * words;
  ContinueWhenEngineReady(&Device::GroupByStep);
}

// ---------------------------------------------------------------------------
// Project

Status Device::StartProject(const ProjectJob& job,
                            std::function<void(sim::Tick)> on_done) {
  NDP_RETURN_NOT_OK(CheckIdleAndOwned());
  if (config_.elem_bytes != 8) {
    return Status::Unimplemented("project engine operates on 64-bit words");
  }
  NDP_RETURN_NOT_OK(CheckRange(job.col_base, job.num_rows * config_.elem_bytes));
  NDP_RETURN_NOT_OK(CheckRange(job.bitmap_base, (job.num_rows + 7) / 8));
  if (job.col_base % kBurstBytes != 0 || job.out_base % kBurstBytes != 0 ||
      job.bitmap_base % kBurstBytes != 0) {
    return Status::InvalidArgument("project addresses must be 64 B aligned");
  }
  busy_ = true;
  project_ = job;
  on_done_ = std::move(on_done);
  cursor_rows_ = 0;
  engine_ready_at_ = eq_->Now();
  project_out_buffer_.clear();
  project_emitted_ = 0;
  last_job_status_ = Status::OK();
  stats_.total_busy_ps -= eq_->Now();
  if (MaybeInjectHang()) return Status::OK();
  ScheduleAfterGuarded(config_.invocation_overhead_cycles *
                           config_.clock.period_ps(),
                       [this] { ProjectStep(); });
  return Status::OK();
}

void Device::ProjectStep() {
  const ProjectJob& job = *project_;
  if (cursor_rows_ >= job.num_rows) {
    FlushProjectOutput([this] { FinishJob(); }, /*final_flush=*/true);
    return;
  }
  bool need_bitmap = cursor_rows_ % kBitsPerBurst == 0;
  auto process = [this]() {
    const ProjectJob& j = *project_;
    uint64_t burst_addr = j.col_base + cursor_rows_ * config_.elem_bytes;
    burst_addr -= burst_addr % kBurstBytes;
    ReadBurst(burst_addr, [this](sim::Tick data_done) {
      const ProjectJob& jb = *project_;
      uint64_t rows_here = std::min<uint64_t>(
          kBurstBytes / config_.elem_bytes, jb.num_rows - cursor_rows_);
      for (uint64_t r = cursor_rows_; r < cursor_rows_ + rows_here; ++r) {
        uint64_t word =
            dram_->backing_store().Read64(jb.bitmap_base + (r / 64) * 8);
        if ((word >> (r % 64)) & 1) {
          project_out_buffer_.push_back(static_cast<int64_t>(
              dram_->backing_store().Read64(jb.col_base +
                                            r * config_.elem_bytes)));
          ++stats_.matches;
        }
      }
      stats_.rows_processed += rows_here;
      cursor_rows_ += rows_here;
      uint32_t words = kBurstBytes / 8;
      sim::Tick start = std::max(data_done, engine_ready_at_);
      sim::Tick proc = config_.BurstProcessingPs(words);
      engine_ready_at_ = start + proc;
      stats_.engine_busy_ps += proc;
      stats_.energy_fj += config_.energy_per_word_fj * words;
      // Buffer qualifying values up to the device's output buffer capacity
      // before dumping them back (§4: "when the internal buffers are full,
      // JAFAR will dump the contents back to a pre-allocated location") —
      // flushing per burst would pay the write-to-read turnaround each time.
      if (project_out_buffer_.size() >= config_.output_buffer_bits / 8) {
        FlushProjectOutput([this] { ProjectStep(); }, /*final_flush=*/false);
      } else {
        ProjectStep();
      }
    });
  };
  if (need_bitmap) {
    uint64_t bm_addr = job.bitmap_base + (cursor_rows_ / 8);
    bm_addr -= bm_addr % kBurstBytes;
    ReadBurst(bm_addr, [process](sim::Tick) { process(); });
  } else {
    process();
  }
}

void Device::FlushProjectOutput(std::function<void()> next, bool final_flush) {
  const uint64_t words_per_burst = kBurstBytes / 8;
  uint64_t available = project_out_buffer_.size();
  uint64_t to_write = final_flush ? available
                                  : (available / words_per_burst) * words_per_burst;
  if (to_write == 0) {
    next();
    return;
  }
  uint64_t addr = project_->out_base + project_emitted_ * 8;
  for (uint64_t i = 0; i < to_write; ++i) {
    dram_->backing_store().Write64(
        addr + i * 8, static_cast<uint64_t>(project_out_buffer_[i]));
  }
  project_out_buffer_.erase(project_out_buffer_.begin(),
                            project_out_buffer_.begin() +
                                static_cast<long>(to_write));
  project_emitted_ += to_write;
  uint64_t first_burst = addr - addr % kBurstBytes;
  uint64_t last_byte = addr + to_write * 8 - 1;
  uint64_t bursts = (last_byte - first_burst) / kBurstBytes + 1;
  WriteBurstChain(first_burst, bursts, std::move(next));
}

}  // namespace ndp::jafar
