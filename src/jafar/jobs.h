// Job descriptors for the operations JAFAR can execute: the select of §2.2
// plus the §4 extensions (aggregation, projection, row-store multi-predicate
// filters). A job always targets physically contiguous data within one rank —
// the driver (and ultimately the OS, per §4 "Memory Management") guarantees
// this by pinning and translating pages before invocation.
#pragma once

#include <cstdint>
#include <vector>

namespace ndp::jafar {

/// Predicate comparison operators supported by the filter datapath (§2.2:
/// =, <, >, <=, >= — ranges use both ALUs).
enum class CompareOp : uint8_t {
  kEq,
  kLt,
  kGt,
  kLe,
  kGe,
  kBetween,  ///< range_low <= x <= range_high (inclusive, Figure 2)
};

const char* CompareOpToString(CompareOp op);

/// Evaluates `op` on a value (host-side golden semantics, also used by the
/// device's functional model).
bool EvalCompare(CompareOp op, int64_t value, int64_t lo, int64_t hi);

/// \brief Select: filter a column, produce a bitmap (Figure 2's API shape).
struct SelectJob {
  uint64_t col_base = 0;    ///< physical address of the column data
  uint64_t num_rows = 0;
  CompareOp op = CompareOp::kBetween;
  int64_t range_low = 0;
  int64_t range_high = 0;
  uint64_t out_base = 0;    ///< physical address of the output bitmap
  /// Word-granularity interleave handling (§2.2): when true, bitmap
  /// write-back merges under a mask instead of overwriting whole words.
  bool masked_writeback = false;
  uint64_t writeback_mask = ~uint64_t{0};
};

/// Aggregation kinds (§4 "Aggregations").
enum class AggKind : uint8_t { kSum, kMin, kMax, kCount };

/// \brief Aggregate a column into a single 64-bit result written to out_addr.
struct AggregateJob {
  uint64_t col_base = 0;
  uint64_t num_rows = 0;
  AggKind kind = AggKind::kSum;
  /// Optional pre-filter: aggregate only rows whose bitmap bit is set
  /// (bitmap_base == 0 means aggregate everything).
  uint64_t bitmap_base = 0;
  uint64_t out_addr = 0;
};

/// \brief Projection (§4 "Projections"): emit col[i] for every set bit of a
/// selection bitmap, densely packed at out_base.
struct ProjectJob {
  uint64_t col_base = 0;
  uint64_t num_rows = 0;
  uint64_t bitmap_base = 0;
  uint64_t out_base = 0;
};

/// \brief Grouped aggregation (§4 "Aggregations": "due to hardware
/// restrictions, there must be a limit to the number of hash buckets JAFAR
/// can support, which suggests that a hierarchical aggregation approach will
/// be required"). Keys are small integers (dictionary codes); the device
/// aggregates groups in [key_offset, key_offset + DeviceConfig::
/// groupby_buckets); rows outside the window are skipped, so the host can
/// cover a larger key domain with several passes — the hierarchical scheme.
struct GroupByJob {
  uint64_t key_base = 0;   ///< group-key column (int64 codes)
  uint64_t val_base = 0;   ///< value column
  uint64_t num_rows = 0;
  AggKind kind = AggKind::kSum;
  int64_t key_offset = 0;  ///< first key handled by this pass
  /// Optional pre-filter: only rows whose bitmap bit is set contribute
  /// (0 = aggregate everything). Lets a JAFAR select feed a JAFAR group-by
  /// without the data ever leaving memory — TPC-H Q1's filter + group-by.
  uint64_t bitmap_base = 0;
  /// Result layout at out_base: per bucket b, two 64-bit words
  /// {aggregate, count} for key key_offset + b.
  uint64_t out_base = 0;
};

/// \brief Semijoin probe (JSPIM-style join pushdown): stream the join-key
/// column through `hash_count` multiply-shift Bloom hash lanes against a
/// filter image preloaded into device SRAM from DRAM, and emit one candidate
/// bit per row. The filter admits no false negatives, so the bitmap is a
/// superset of the true semijoin — the host refines candidates against the
/// exact build-key set to make the result bit-identical to the CPU oracle.
struct ProbeJob {
  uint64_t col_base = 0;      ///< join-key column (int64 values)
  uint64_t num_rows = 0;
  uint64_t out_base = 0;      ///< candidate bitmap, one bit per row
  uint64_t filter_base = 0;   ///< Bloom filter image in this device's rank
  uint64_t filter_words = 0;  ///< image size in 64-bit words (power of two)
  uint32_t hash_count = 2;    ///< must match DeviceConfig::probe_hashes
};

/// Finalizer of the probe datapath's multiply-shift lane h (host-side golden
/// semantics, shared with the device functional model and the runtime's
/// filter builder — all three must hash identically or the no-false-negative
/// property silently breaks).
uint64_t ProbeMix64(uint64_t key, uint32_t hash_index);

/// Bit index of hash lane `hash_index` for `key` in a filter of
/// `filter_words` 64-bit words (filter_words must be a power of two).
uint64_t BloomBitIndex(uint64_t key, uint32_t hash_index,
                       uint64_t filter_words);

/// \brief Sort (§4 "Sorting"): a fixed-function bitonic sorter over blocks of
/// `DeviceConfig::sort_block_elems` elements ("ASIC sorters are generally
/// costly in area, so implementations are typically limited to sorting a
/// small number of elements at a time; larger datasets use divide and
/// conquer"). The device emits sorted runs of one block each at out_base; run
/// merging is left to the host (or a later device pass).
struct SortJob {
  uint64_t col_base = 0;
  uint64_t num_rows = 0;
  uint64_t out_base = 0;
  bool descending = false;
};

/// One conjunct of a row-store filter.
struct RowPredicate {
  uint32_t attr_offset_bytes = 0;  ///< offset of the attribute within a tuple
  CompareOp op = CompareOp::kBetween;
  int64_t range_low = 0;
  int64_t range_high = 0;
};

/// \brief Row-store select (§4 "NDP in Row-Stores and Hybrids"): apply a
/// conjunction of predicates to each fixed-width tuple.
struct RowStoreJob {
  uint64_t tuple_base = 0;
  uint64_t num_tuples = 0;
  uint32_t tuple_bytes = 0;  ///< must be a multiple of 8
  std::vector<RowPredicate> predicates;
  uint64_t out_base = 0;  ///< bitmap, one bit per tuple
};

}  // namespace ndp::jafar
