// Generation v1_rank_io: the source paper's datapath. One comparator stream
// sits at the DIMM IO buffer and consumes ordinary rank reads over the shared
// IO bus — one burst at a time, paced by tCCD and by the engine's
// words-per-cycle rate. This is the pre-refactor Device sequencer moved
// behind the DatapathModel interface, preserved step-for-step: with
// generation v1_rank_io the refactor is observationally a no-op (byte-
// identical stats dumps), which makes v1 the oracle for v2.
#include <algorithm>

#include "jafar/datapath_impl.h"
#include "jafar/device.h"  // DeviceStats definition (shell internals stay private)
#include "sim/event_queue.h"

namespace ndp::jafar {

namespace {

constexpr uint32_t kBurstBytes = 64;

class V1RankIoDatapath final : public DatapathModel {
 public:
  using DatapathModel::DatapathModel;

  DeviceGeneration generation() const override {
    return DeviceGeneration::kV1RankIo;
  }

  void BeginScan() override { SelectStep(); }

 private:
  void SelectStep();
  void ContinueScanWhenEngineReady();
};

void V1RankIoDatapath::SelectStep() {
  const bool is_rs = is_rowstore();
  const bool probe = is_probe();
  const uint64_t total_rows = is_rs      ? rowstore_job().num_tuples
                              : probe    ? probe_job().num_rows
                                         : select_job().num_rows;
  if (cursor_rows() >= total_rows) {
    // Final (possibly partial) bitmap flush, then done.
    FlushBitmap([this] { FinishJob(); });
    return;
  }
  const uint32_t row_bytes =
      is_rs ? rowstore_job().tuple_bytes : config().elem_bytes;
  const uint64_t base = is_rs      ? rowstore_job().tuple_base
                        : probe    ? probe_job().col_base
                                   : select_job().col_base;
  // The burst containing the next unprocessed row.
  uint64_t burst_addr = base + cursor_rows() * row_bytes;
  burst_addr -= burst_addr % kBurstBytes;
  // Rows whose data completes within this burst.
  uint64_t burst_end = burst_addr + kBurstBytes;
  uint64_t first = cursor_rows();
  uint64_t last = std::min<uint64_t>(
      total_rows, (burst_end - base + row_bytes - 1) / row_bytes);
  uint64_t rows_here = last > first ? last - first : 0;

  ReadBurst(burst_addr, [this, first, rows_here, is_rs, probe,
                         base](sim::Tick data_done) {
    if (DrawStallAtBurst()) {
      // Sequencer stall mid-scan: the partial bitmap may already be in DRAM,
      // but this burst's rows are never accumulated. The device stays busy
      // with no pending events until the driver watchdog aborts it.
      return;
    }
    // Functional evaluation against the backing store contents.
    uint64_t matches_here = 0;
    for (uint64_t r = first; r < first + rows_here; ++r) {
      bool pass;
      if (is_rs) {
        pass = true;
        for (const RowPredicate& p : rowstore_job().predicates) {
          int64_t v = static_cast<int64_t>(
              Read64(base + r * rowstore_job().tuple_bytes +
                     p.attr_offset_bytes));
          pass = pass && EvalCompare(p.op, v, p.range_low, p.range_high);
        }
      } else if (probe) {
        pass = EvalProbeKey(ReadValue(base + r * config().elem_bytes));
      } else {
        int64_t v = ReadValue(base + r * config().elem_bytes);
        pass = EvalCompare(select_job().op, v, select_job().range_low,
                           select_job().range_high);
      }
      AppendBit(pass);
      if (pass) ++matches_here;
    }
    add_matches(matches_here);
    stats().rows_processed += rows_here;
    set_cursor_rows(cursor_rows() + rows_here);

    // Datapath timing: one word per II from the IO buffer. Probe jobs run
    // the hash-lane kernel's (slower) schedule instead of the comparator's.
    uint32_t words = kBurstBytes / 8;
    sim::Tick start = std::max(data_done, engine_ready_at());
    sim::Tick proc = probe ? config().ProbeBurstProcessingPs(words)
                           : config().BurstProcessingPs(words);
    set_engine_ready_at(start + proc);
    stats().engine_busy_ps += proc;
    stats().energy_fj += (probe ? config().probe_energy_per_word_fj
                                : config().energy_per_word_fj) *
                         words;

    if (pending_bit_count() >= config().output_buffer_bits) {
      FlushBitmap([this] { ContinueScanWhenEngineReady(); });
    } else {
      ContinueScanWhenEngineReady();
    }
  });
}

void V1RankIoDatapath::ContinueScanWhenEngineReady() {
  // Throttle command issue so a slow datapath (words_per_cycle < 1) does not
  // overrun its input FIFO: the next burst's data (which completes CL+tBURST
  // after its command) should not arrive before the engine can take it.
  sim::Tick pipe_ps = BusCycles(timing().cl + timing().tburst);
  sim::Tick earliest =
      engine_ready_at() > pipe_ps ? engine_ready_at() - pipe_ps : 0;
  if (earliest > eq()->Now()) {
    ScheduleAtGuarded(earliest, [this] { SelectStep(); });
  } else {
    SelectStep();
  }
}

}  // namespace

std::unique_ptr<DatapathModel> MakeV1RankIoDatapath(Device* dev) {
  return std::make_unique<V1RankIoDatapath>(dev);
}

}  // namespace ndp::jafar
