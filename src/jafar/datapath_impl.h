// Internal: per-generation constructors for MakeDatapathModel. Only the
// factory (datapath.cc) and the generation translation units include this.
#pragma once

#include <memory>

#include "jafar/datapath.h"

namespace ndp::jafar {

std::unique_ptr<DatapathModel> MakeV1RankIoDatapath(Device* dev);
std::unique_ptr<DatapathModel> MakeV2BankLevelDatapath(Device* dev);

}  // namespace ndp::jafar
