#include "jafar/datapath.h"

#include <utility>

#include "fault/injector.h"
#include "jafar/datapath_impl.h"
#include "jafar/device.h"
#include "util/macros.h"

namespace ndp::jafar {

// ---------------------------------------------------------------------------
// Shell forwarders. DatapathModel is Device's only friend; every concrete
// generation reaches the shell through these.

const DeviceConfig& DatapathModel::config() const { return dev_->config_; }

DeviceStats& DatapathModel::stats() { return dev_->stats_; }

sim::EventQueue* DatapathModel::eq() const { return dev_->eq_; }

uint32_t DatapathModel::rank_index() const { return dev_->rank_index_; }

uint32_t DatapathModel::channel_index() const { return dev_->channel_index_; }

dram::DramSystem& DatapathModel::dram() { return *dev_->dram_; }

dram::Channel& DatapathModel::channel() { return dev_->channel(); }

const dram::DramTiming& DatapathModel::timing() const { return dev_->timing(); }

sim::Tick DatapathModel::BusCycles(uint32_t n) const {
  return dev_->BusCycles(n);
}

bool DatapathModel::is_rowstore() const { return dev_->rowstore_.has_value(); }

bool DatapathModel::is_probe() const { return dev_->probe_.has_value(); }

const SelectJob& DatapathModel::select_job() const { return *dev_->select_; }

const RowStoreJob& DatapathModel::rowstore_job() const {
  return *dev_->rowstore_;
}

const ProbeJob& DatapathModel::probe_job() const { return *dev_->probe_; }

bool DatapathModel::EvalProbeKey(int64_t key) const {
  return dev_->EvalProbeKey(key);
}

uint64_t DatapathModel::cursor_rows() const { return dev_->cursor_rows_; }

void DatapathModel::set_cursor_rows(uint64_t rows) {
  dev_->cursor_rows_ = rows;
}

sim::Tick DatapathModel::engine_ready_at() const {
  return dev_->engine_ready_at_;
}

void DatapathModel::set_engine_ready_at(sim::Tick t) {
  dev_->engine_ready_at_ = t;
}

void DatapathModel::add_matches(uint64_t n) {
  dev_->last_matches_ += n;
  dev_->stats_.matches += n;
}

void DatapathModel::AppendBit(bool set) {
  dev_->pending_bits_.SetTo(dev_->pending_bit_count_++, set);
}

uint64_t DatapathModel::pending_bit_count() const {
  return dev_->pending_bit_count_;
}

void DatapathModel::IssueWhenReady(dram::Command cmd,
                                   std::function<void(sim::Tick)> next,
                                   std::function<void()> on_stale,
                                   bool defer_to_refresh) {
  dev_->IssueWhenReady(std::move(cmd), std::move(next), std::move(on_stale),
                       defer_to_refresh);
}

void DatapathModel::OpenRow(const dram::DramLocation& loc,
                            std::function<void()> next) {
  dev_->OpenRow(loc, std::move(next));
}

void DatapathModel::ReadBurst(uint64_t addr,
                              std::function<void(sim::Tick)> next) {
  dev_->ReadBurst(addr, std::move(next));
}

void DatapathModel::ReadBurstChain(uint64_t addr, uint64_t bursts,
                                   std::function<void(sim::Tick)> on_last_data) {
  dev_->ReadBurstChain(addr, bursts, std::move(on_last_data));
}

void DatapathModel::BeginProbe() {
  // Filter preload, shared by every generation: announce the load window to
  // the shadow checker, stream the Bloom image out of DRAM with ordinary
  // reads (the timing), latch it into the probe SRAM (the function), close
  // the window, and only then start the generation's scan sequencer.
  const ProbeJob& job = *dev_->probe_;
  channel().NoteProbeFilterLoadStart(rank_index(), eq()->Now());
  dev_->probe_sram_.assign(job.filter_words, 0);
  uint64_t bursts = (job.filter_words * 8 + 63) / 64;
  ReadBurstChain(job.filter_base, bursts, [this](sim::Tick) {
    const ProbeJob& j = *dev_->probe_;
    for (uint64_t w = 0; w < j.filter_words; ++w) {
      dev_->probe_sram_[w] = Read64(j.filter_base + w * 8);
    }
    channel().NoteProbeFilterLoadDone(rank_index());
    BeginScan();
  });
}

void DatapathModel::FlushBitmap(std::function<void()> next) {
  dev_->FlushBitmap(std::move(next));
}

void DatapathModel::FinishJob() { dev_->FinishJob(); }

void DatapathModel::FailJob(Status st) { dev_->FailJob(std::move(st)); }

void DatapathModel::ScheduleAtGuarded(sim::Tick t, std::function<void()> fn) {
  dev_->ScheduleAtGuarded(t, std::move(fn));
}

void DatapathModel::ScheduleAfterGuarded(sim::Tick delta,
                                         std::function<void()> fn) {
  dev_->ScheduleAfterGuarded(delta, std::move(fn));
}

int64_t DatapathModel::ReadValue(uint64_t addr) const {
  return dev_->ReadValue(addr);
}

uint64_t DatapathModel::Read64(uint64_t addr) const {
  return dev_->dram_->backing_store().Read64(addr);
}

bool DatapathModel::DrawStallAtBurst() {
#ifdef NDP_FAULT_INJECT
  if (dev_->injector_ != nullptr) return dev_->injector_->DrawStallAtBurst();
#endif
  return false;
}

bool DatapathModel::HandleReadFault(uint64_t burst_addr) {
#ifdef NDP_FAULT_INJECT
  if (dev_->injector_ != nullptr) return dev_->HandleReadFault(burst_addr);
#endif
  (void)burst_addr;
  return true;
}

bool DatapathModel::RefreshClaims() const {
  return dev_->dram_->controller(dev_->channel_index_)
      .RefreshClaims(dev_->rank_index_);
}

// ---------------------------------------------------------------------------
// Factory: the ONE sanctioned generation-dispatch site.

std::unique_ptr<DatapathModel> MakeDatapathModel(DeviceGeneration gen,
                                                 Device* dev) {
  switch (gen) {  // ndp-lint: generation-dispatch-ok (this is the factory)
    case DeviceGeneration::kV1RankIo:
      return MakeV1RankIoDatapath(dev);
    case DeviceGeneration::kV2BankLevel:
      return MakeV2BankLevelDatapath(dev);
  }
  NDP_CHECK_MSG(false, "unknown device generation");
  return nullptr;
}

}  // namespace ndp::jafar
