#include "core/dimm_array.h"

#include <algorithm>

namespace ndp::core {

DimmArray::DimmArray(dram::DramTiming timing, uint32_t channels,
                     uint32_t ranks_per_channel,
                     jafar::DeviceConfig device_config, uint32_t rows_per_bank)
    : timing_(std::move(timing)), device_config_(device_config) {
  dram::DramOrganization org;
  org.channels = channels;
  org.ranks_per_channel = ranks_per_channel;
  org.rows_per_bank = rows_per_bank;
  dram::ControllerConfig mc;
  StatsScope root(&stats_, "array");
  dram_ = std::make_unique<dram::DramSystem>(
      &eq_, timing_, org, dram::InterleaveScheme::kContiguous, mc,
      root.Sub("dram"));
  for (uint32_t ch = 0; ch < channels; ++ch) {
    for (uint32_t rk = 0; rk < ranks_per_channel; ++rk) {
      devices_.push_back(std::make_unique<jafar::Device>(
          dram_.get(), ch, rk, device_config,
          root.Sub("dev" + std::to_string(devices_.size()))));
    }
  }
}

void DimmArray::AcquireAllOwnership() {
  uint32_t granted = 0;
  for (auto& dev : devices_) {
    dram_->controller(dev->channel_index())
        .TransferOwnership(dev->rank_index(), dram::RankOwner::kAccelerator,
                           [&granted](sim::Tick) { ++granted; });
  }
  NDP_CHECK(eq_.RunUntilTrue(
      [&] { return granted == devices_.size(); }));
}

std::vector<uint64_t> DimmArray::LoadPartitioned(const db::Column& col) {
  partitions_.clear();
  total_rows_ = col.size();
  uint32_t n = num_devices();
  // Contiguous slices, rounded to bitmap-word (64-row) boundaries so merged
  // bitmap words never straddle partitions.
  uint64_t per = (col.size() / n + 63) & ~uint64_t{63};
  std::vector<uint64_t> counts;
  uint64_t row = 0;
  uint64_t rank_bytes = dram_->organization().BytesPerRank();
  for (uint32_t d = 0; d < n && row < col.size(); ++d) {
    Partition part;
    part.device = d;
    part.first_row = row;
    part.rows = std::min<uint64_t>(per, col.size() - row);
    // Lay the slice out at the start of the device's rank; bitmap after it.
    const jafar::Device& dev = *devices_[d];
    uint64_t rank_base =
        (static_cast<uint64_t>(dev.channel_index()) *
             dram_->organization().ranks_per_channel +
         dev.rank_index()) *
        rank_bytes;
    part.col_base = rank_base;
    uint64_t col_bytes = (part.rows * 8 + 4095) & ~uint64_t{4095};
    part.out_base = rank_base + col_bytes;
    dram_->backing_store().Write(part.col_base, col.data() + row,
                                 part.rows * 8);
    partitions_.push_back(part);
    counts.push_back(part.rows);
    row += part.rows;
  }
  NDP_CHECK(row == col.size());
  return counts;
}

Result<DimmArray::ParallelResult> DimmArray::RunParallelSelect(int64_t lo,
                                                               int64_t hi) {
  if (partitions_.empty()) {
    return Status::FailedPrecondition("LoadPartitioned was not called");
  }
  uint32_t done = 0;
  StatsSnapshot before = stats_.Snapshot();
  sim::Tick start = eq_.Now();
  sim::Tick makespan_end = start;
  for (const Partition& part : partitions_) {
    jafar::SelectJob job;
    job.col_base = part.col_base;
    job.num_rows = part.rows;
    job.range_low = lo;
    job.range_high = hi;
    job.out_base = part.out_base;
    // Exclusive-ownership research harness: a wedged device surfaces as a
    // failed RunUntilTrue drain check below.  ndp-lint: watchdog-arm-ok
    NDP_RETURN_NOT_OK(devices_[part.device]->StartSelect(
        job, [&done, &makespan_end](sim::Tick t) {
          ++done;
          makespan_end = std::max(makespan_end, t);
        }));
  }
  size_t launched = partitions_.size();
  if (!eq_.RunUntilTrue([&] { return done == launched; })) {
    return Status::Internal("parallel select did not complete");
  }

  ParallelResult result;
  result.duration_ps = makespan_end - start;
  result.counters = stats_.Snapshot().DeltaSince(before);
  result.bitmap.Resize(total_rows_);
  for (const Partition& part : partitions_) {
    NDP_CHECK(part.first_row % 64 == 0);
    uint64_t words = (part.rows + 63) / 64;
    for (uint64_t w = 0; w < words; ++w) {
      uint64_t value = dram_->backing_store().Read64(part.out_base + w * 8);
      // Mask tail bits beyond the partition's rows.
      if ((w + 1) * 64 > part.rows) {
        uint64_t valid = part.rows - w * 64;
        value &= (valid >= 64) ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
      }
      result.bitmap.SetWord(part.first_row / 64 + w, value);
    }
    result.matches += devices_[part.device]->last_match_count();
  }
  return result;
}

}  // namespace ndp::core
