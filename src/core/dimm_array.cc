#include "core/dimm_array.h"

#include <algorithm>

namespace ndp::core {

DimmArray::DimmArray(dram::DramTiming timing, uint32_t channels,
                     uint32_t ranks_per_channel,
                     jafar::DeviceConfig device_config, uint32_t rows_per_bank,
                     bool partitioned)
    : timing_(std::move(timing)), device_config_(device_config) {
  if (partitioned) {
    // One partition per channel plus a host partition for runtime logic.
    // Lookahead = one DDR3 bus cycle: the cheapest modeled host<->device
    // interaction (a command hop across the channel interface) — see
    // DESIGN.md §5 for the derivation.
    host_partition_ = channels;
    partitions_ = std::make_unique<sim::PartitionSet>(
        channels + 1, /*lookahead_ps=*/timing_.tck_ps,
        /*cycle_ps=*/timing_.tck_ps);
  }
  dram::DramOrganization org;
  org.channels = channels;
  org.ranks_per_channel = ranks_per_channel;
  org.rows_per_bank = rows_per_bank;
  dram::ControllerConfig mc;
  StatsScope root(&stats_, "array");
  dram_ = std::make_unique<dram::DramSystem>(
      &eq(), timing_, org, dram::InterleaveScheme::kContiguous, mc,
      root.Sub("dram"), partitions_.get());
  for (uint32_t ch = 0; ch < channels; ++ch) {
    for (uint32_t rk = 0; rk < ranks_per_channel; ++rk) {
      devices_.push_back(std::make_unique<jafar::Device>(
          dram_.get(), ch, rk, device_config,
          root.Sub("dev" + std::to_string(devices_.size()))));
    }
  }
  // Legacy single-wheel arrays keep the seed's exact registry contents; the
  // partition counters exist only where partitions do.
  if (partitions_) {
    partitions_->RegisterStats(StatsScope(&stats_, "sim"));
  }
  ResetAllocators();
}

void DimmArray::PostToDevice(uint32_t device, std::function<void()> fn) {
  if (!partitions_) {
    fn();
    return;
  }
  partitions_->Send(host_partition_, devices_[device]->channel_index(),
                    /*extra_delay_ps=*/0, std::move(fn));
}

void DimmArray::PostToHost(uint32_t device, std::function<void()> fn) {
  if (!partitions_) {
    fn();
    return;
  }
  partitions_->Send(devices_[device]->channel_index(), host_partition_,
                    /*extra_delay_ps=*/0, std::move(fn));
}

void DimmArray::AcquireAllOwnership() {
  uint32_t granted = 0;
  for (uint32_t d = 0; d < devices_.size(); ++d) {
    jafar::Device& dev = *devices_[d];
    // The grant callback fires on the channel partition; the shared counter
    // lives host-side, so it is bumped through the port (inline in legacy
    // mode — identical to the seed behavior).
    dram_->controller(dev.channel_index())
        .TransferOwnership(dev.rank_index(), dram::RankOwner::kAccelerator,
                           [this, d, &granted](sim::Tick) {
                             PostToHost(d, [&granted] { ++granted; });
                           });
  }
  NDP_CHECK(RunUntilTrue([&] { return granted == devices_.size(); }));
}

uint64_t DimmArray::RankBase(uint32_t device) const {
  const jafar::Device& dev = *devices_[device];
  return (static_cast<uint64_t>(dev.channel_index()) *
              dram_->organization().ranks_per_channel +
          dev.rank_index()) *
         dram_->organization().BytesPerRank();
}

void DimmArray::ResetAllocators() {
  alloc_next_.resize(devices_.size());
  for (uint32_t d = 0; d < devices_.size(); ++d) alloc_next_[d] = RankBase(d);
}

Result<uint64_t> DimmArray::AllocOnDevice(uint32_t device, uint64_t bytes,
                                          uint64_t align) {
  NDP_CHECK(device < devices_.size() && align != 0 &&
            (align & (align - 1)) == 0);
  uint64_t base = (alloc_next_[device] + align - 1) & ~(align - 1);
  uint64_t limit = RankBase(device) + dram_->organization().BytesPerRank();
  if (base + bytes > limit) {
    return Status::ResourceExhausted("device rank allocator full");
  }
  alloc_next_[device] = base + bytes;
  return base;
}

std::vector<uint64_t> DimmArray::SplitRows(uint64_t rows, uint32_t n,
                                           const std::vector<double>& weights) {
  NDP_CHECK(n > 0);
  NDP_CHECK(weights.empty() || weights.size() == n);
  std::vector<uint64_t> counts(n, 0);
  double weight_sum = 0;
  for (uint32_t d = 0; d < n; ++d) {
    double w = weights.empty() ? 1.0 : weights[d];
    NDP_CHECK(w >= 0.0);
    weight_sum += w;
  }
  NDP_CHECK(weight_sum > 0.0);
  // Quotas floored to whole 64-row blocks: every partition start stays on a
  // bitmap-word boundary regardless of how ragged rows/weights are.
  uint64_t assigned = 0;
  for (uint32_t d = 0; d < n; ++d) {
    double w = weights.empty() ? 1.0 : weights[d];
    uint64_t quota = static_cast<uint64_t>(static_cast<double>(rows) *
                                           (w / weight_sum));
    counts[d] = quota / 64 * 64;
    assigned += counts[d];
  }
  // Round-robin the leftover whole blocks over positive-weight devices, then
  // append the sub-64 tail to the last non-empty slice (keeping every later
  // slice's first_row 64-aligned — there is none after it).
  uint64_t leftover_blocks = (rows - assigned) / 64;
  uint32_t d = 0;
  while (leftover_blocks > 0) {
    if (weights.empty() || weights[d] > 0.0) {
      counts[d] += 64;
      --leftover_blocks;
    }
    d = (d + 1) % n;
  }
  uint64_t tail = rows % 64;
  if (tail > 0) {
    uint32_t last = 0;
    bool found = false;
    for (uint32_t i = 0; i < n; ++i) {
      if (counts[i] > 0) { last = i; found = true; }
      if (!found && (weights.empty() || weights[i] > 0.0)) {
        last = i;
        found = true;
      }
    }
    counts[last] += tail;
  }
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  NDP_CHECK(total == rows);
  return counts;
}

Result<PlacedColumn> DimmArray::PlaceColumn(const db::Column& col,
                                            const std::vector<double>& weights) {
  PlacedColumn placed;
  placed.total_rows = col.size();
  std::vector<uint64_t> counts = SplitRows(col.size(), num_devices(), weights);
  uint64_t row = 0;
  for (uint32_t d = 0; d < num_devices(); ++d) {
    DevicePlacement part;
    part.device = d;
    part.first_row = row;
    part.rows = counts[d];
    if (part.rows > 0) {
      NDP_ASSIGN_OR_RETURN(part.col_base,
                           AllocOnDevice(d, part.rows * 8, 4096));
      NDP_ASSIGN_OR_RETURN(
          part.out_base,
          AllocOnDevice(d, ((part.rows + 7) / 8 + 4095) & ~uint64_t{4095},
                        4096));
      dram_->backing_store().Write(part.col_base, col.data() + row,
                                   part.rows * 8);
    }
    placed.parts.push_back(part);
    row += part.rows;
  }
  NDP_CHECK(row == col.size());
  return placed;
}

std::vector<uint64_t> DimmArray::LoadPartitioned(const db::Column& col) {
  ResetAllocators();
  parts_.clear();
  total_rows_ = col.size();
  Result<PlacedColumn> placed = PlaceColumn(col);
  NDP_CHECK(placed.ok());  // a fresh rank always fits one column
  std::vector<uint64_t> counts;
  for (const DevicePlacement& part : placed.ValueOrDie().parts) {
    counts.push_back(part.rows);
    if (part.rows > 0) parts_.push_back(part);
  }
  return counts;
}

Result<DimmArray::ParallelResult> DimmArray::RunParallelSelect(int64_t lo,
                                                               int64_t hi) {
  if (parts_.empty()) {
    return Status::FailedPrecondition("LoadPartitioned was not called");
  }
  StatsSnapshot before = stats_.Snapshot();
  sim::Tick start = eq().Now();
  // Per-device completion slots, written host-side only (the device's done
  // callback hops back through the port): summing/maxing them at barriers is
  // order-independent, so the result is identical at every thread count.
  std::vector<uint8_t> dev_done(parts_.size(), 0);
  std::vector<sim::Tick> dev_end(parts_.size(), start);
  for (size_t i = 0; i < parts_.size(); ++i) {
    const DevicePlacement& part = parts_[i];
    jafar::SelectJob job;
    job.col_base = part.col_base;
    job.num_rows = part.rows;
    job.range_low = lo;
    job.range_high = hi;
    job.out_base = part.out_base;
    uint32_t d = part.device;
    // Exclusive-ownership research harness: a wedged device surfaces as a
    // failed RunUntilTrue drain check below; no queueing to bypass here.
    // ndp-lint: watchdog-arm-ok  ndp-lint: runtime-bypass-ok  harness drains
    NDP_RETURN_NOT_OK(devices_[d]->StartSelect(
        job, [this, d, i, &dev_done, &dev_end](sim::Tick t) {
          PostToHost(d, [i, t, &dev_done, &dev_end] {
            dev_done[i] = 1;
            dev_end[i] = t;
          });
        }));
  }
  if (!RunUntilTrue([&] {
        for (uint8_t f : dev_done) {
          if (!f) return false;
        }
        return true;
      })) {
    return Status::Internal("parallel select did not complete");
  }
  sim::Tick makespan_end = start;
  for (sim::Tick t : dev_end) makespan_end = std::max(makespan_end, t);

  ParallelResult result;
  result.duration_ps = makespan_end - start;
  result.counters = stats_.Snapshot().DeltaSince(before);
  result.bitmap.Resize(total_rows_);
  for (const DevicePlacement& part : parts_) {
    NDP_CHECK(part.first_row % 64 == 0);
    uint64_t words = (part.rows + 63) / 64;
    for (uint64_t w = 0; w < words; ++w) {
      uint64_t value = dram_->backing_store().Read64(part.out_base + w * 8);
      // Mask tail bits beyond the partition's rows.
      if ((w + 1) * 64 > part.rows) {
        uint64_t valid = part.rows - w * 64;
        value &= (valid >= 64) ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
      }
      result.bitmap.SetWord(part.first_row / 64 + w, value);
    }
    result.matches += devices_[part.device]->last_match_count();
  }
  return result;
}

}  // namespace ndp::core
