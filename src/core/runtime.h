// Asynchronous multi-query JAFAR runtime (§3.3 closed-loop): many concurrent
// select/aggregate jobs over a DimmArray, dispatched opportunistically into
// memory-controller idle periods.
//
//   * Per-device FIFO+priority queues: jobs split into per-device chunks at
//     placement boundaries; each device lane drains its queue as a sequence
//     of ownership leases through the fault-recovering jafar::Driver.
//   * Adaptive leases: a per-channel LeaseController keeps an online EWMA of
//     the paper's §3.3 idle-period estimator, fed from the stats registry
//     between leases (during the run, not post-hoc). Leases shrink when the
//     measured host utilization exceeds the QoS budget (max CPU slowdown %,
//     longest-stall bound) and grow toward exclusive ownership when the
//     channel is idle.
//   * Work stealing: a lane that drains its queue re-partitions remaining
//     pages from the most-loaded lane to itself (host-mediated copy), so
//     skewed partitions no longer gate makespan; a permanently faulted
//     lane's pages re-enter the queues the same way.
//
// Determinism: every ordering decision derives from simulated time and the
// (priority, submission-sequence) order; the only randomness in a runtime
// experiment is the workload's seeded PCG32 (host_traffic.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dimm_array.h"
#include "jafar/driver.h"
#include "util/bitvector.h"

namespace ndp::core {

/// QoS and policy knobs of the runtime. All cycle quantities are DDR3 bus
/// cycles. Overridable from the environment via NDP_RUNTIME_* (FromEnv).
struct RuntimeConfig {
  // -- Lease controller -----------------------------------------------------
  uint64_t lease_min_bus_cycles = 2'000;
  uint64_t lease_max_bus_cycles = 160'000;
  uint64_t lease_init_bus_cycles = 20'000;
  double lease_grow = 2.0;     ///< multiplicative increase when idle
  double lease_shrink = 0.5;   ///< multiplicative decrease when over budget
  /// EWMA smoothing for the per-window busy fraction and idle estimate.
  double ewma_alpha = 0.25;
  /// Host utilization below which the channel counts as idle (grow region).
  double idle_busy_threshold = 0.05;
  /// When idle, grow at least to idle_fill_factor x the EWMA of the §3.3
  /// mean-idle-period estimate — the "size leases from the estimator" rule.
  double idle_fill_factor = 32.0;

  // -- QoS budget -----------------------------------------------------------
  /// Max CPU slowdown budget, percent: bounds the rank-ownership duty cycle
  /// lease/(lease+window) whenever the host has traffic.
  double qos_max_cpu_slowdown_pct = 25.0;
  /// Longest-stall bound: no lease (hence no single host-request stall due
  /// to ownership) may exceed this many bus cycles.
  uint64_t qos_max_stall_bus_cycles = 40'000;
  /// Floor for the host window between leases.
  uint64_t host_window_min_bus_cycles = 500;

  // -- Admission ------------------------------------------------------------
  /// Batch-priority dispatches are deferred this long while the channel is
  /// over budget...
  uint64_t admission_defer_bus_cycles = 4'000;
  /// ...but at most this many consecutive times (starvation freedom).
  uint32_t admission_max_defers = 8;

  // -- Recovery -------------------------------------------------------------
  /// Per-lane driver (watchdog/retry/writeback-checksum) configuration,
  /// passed through to each lane's jafar::Driver unchanged.
  jafar::DriverConfig driver;

  // -- Device generation ----------------------------------------------------
  /// Datapath generation of the JAFAR units this runtime drives; callers
  /// building the DimmArray must derive the matching DeviceConfig
  /// (DeviceConfig::Derive for v1_rank_io, DeriveBank for v2_bank_level).
  /// Overridable via NDP_DEVICE_GEN (strict parse, like the other knobs).
  jafar::DeviceGeneration device_gen = jafar::DeviceGeneration::kV1RankIo;

  // -- Work stealing --------------------------------------------------------
  bool steal_enabled = true;
  /// Minimum profitable steal, in 4 KB pages.
  uint64_t steal_min_pages = 4;
  /// Fixed overhead of a host-mediated steal copy, in bus cycles (on top of
  /// 1 x tCCD per 64 B burst: the read and write streams pipeline through the
  /// host buffer on different channels).
  uint64_t steal_copy_overhead_bus_cycles = 2'000;

  // -- Join / group-by pushdown ---------------------------------------------
  /// Bloom hash lanes per probe job. Must match the DeviceConfig's
  /// probe_hashes (the accel-model schedule the probe timing derives from);
  /// SubmitProbe rejects a mismatch up front.
  uint64_t join_hashes = 2;
  /// Bloom filter image size in KB. Power of two, so the device can reduce
  /// hashes to bit indices with a mask instead of a divider.
  uint64_t join_filter_kb = 16;
  /// Steal-victim selection: pick the lane with the largest estimated time
  /// to drain (stealable rows x EWMA ps/row) instead of the most rows, so a
  /// slow lane buried under skewed partitions is relieved first even when a
  /// fast lane happens to hold more raw rows.
  bool join_eta_steal = true;
  /// A lane whose drain ETA exceeds threshold x the mean over busy lanes is
  /// flagged as a heavy hitter; newly flagged lanes wake idle siblings so
  /// stealing starts immediately rather than at the next natural wake-up.
  double join_hh_threshold = 1.5;
  /// Trust a lane's progress-rate EWMA only after this many completed
  /// leases; untrusted lanes borrow the mean rate of trusted siblings.
  uint64_t join_hh_min_leases = 2;

  /// Reads NDP_RUNTIME_* overrides onto the defaults; strict parses, and a
  /// malformed value is InvalidArgument, never silently ignored.
  static Result<RuntimeConfig> FromEnv();
  Status Validate() const;

  double qos_budget_fraction() const { return qos_max_cpu_slowdown_pct / 100.0; }
};

/// \brief Per-channel adaptive lease sizing (one instance per memory
/// channel; all lanes on the channel feed it their host-window observations).
///
/// Let u = EWMA busy fraction of the host windows, i = EWMA of the §3.3
/// idle-period estimate, beta = qos budget fraction, and
/// cap = min(lease_max, qos_max_stall). Per observation:
///
///   u > beta                : L <- max(L_min, shrink * L)         (over budget)
///   u < idle_busy_threshold : L <- min(cap, max(grow * L,
///                                  idle_fill_factor * i))         (idle)
///   otherwise               : L unchanged                         (hold)
///
/// and the host window is W(L) = max(W_min, L * (1 - beta) / beta), collapsed
/// to W_min when the channel is idle. Tightening the budget (smaller beta or
/// smaller stall cap) can only shrink L and grow W for the same observation
/// sequence — the monotonicity property tests pin this.
class LeaseController {
 public:
  explicit LeaseController(const RuntimeConfig& cfg);

  /// One host-window observation: `window_cycles` elapsed off-lease,
  /// `busy_cycles` of controller busy time and `requests` served within it.
  /// Updates the EWMAs, then applies the adaptation rule.
  void Observe(uint64_t window_cycles, uint64_t busy_cycles,
               uint64_t requests);

  uint64_t NextLeaseBusCycles() const;
  uint64_t HostWindowBusCycles(uint64_t lease_bus_cycles) const;
  bool ChannelIdle() const;
  bool OverBudget() const;
  bool HasObservation() const { return has_observation_; }

  double ewma_busy_fraction() const { return ewma_busy_; }
  double ewma_idle_cycles() const { return ewma_idle_; }
  uint64_t qos_shrinks() const { return shrinks_; }
  uint64_t qos_grows() const { return grows_; }

 private:
  uint64_t LeaseCap() const;

  RuntimeConfig cfg_;
  double lease_;
  double ewma_busy_ = 0.0;
  double ewma_idle_ = 0.0;
  bool has_observation_ = false;
  uint64_t shrinks_ = 0;
  uint64_t grows_ = 0;
};

enum class JobPriority : uint8_t { kInteractive = 0, kBatch = 1 };
enum class JobKind : uint8_t { kSelect, kAggregate, kProbe, kGroupBy };

/// Per-job submission options. `deadline_ps` is an absolute simulated time;
/// 0 means no deadline. A deadlined job whose deadline passes is cancelled at
/// the next chunk boundary (queued chunks dropped before their lease starts)
/// and can never complete late: the completion path re-checks the deadline
/// and fails the job with DeadlineExceeded instead of reporting success.
struct SubmitOptions {
  JobPriority priority = JobPriority::kBatch;
  sim::Tick deadline_ps = 0;
  std::function<void(const struct JobResult&)> on_done;
};

/// Completion record of one runtime job.
struct JobResult {
  uint64_t job_id = 0;
  JobKind kind = JobKind::kSelect;
  Status status;                ///< OK, or the cause after lanes failed
  uint64_t matches = 0;         ///< select/probe: qualifying rows
  int64_t agg_value = 0;        ///< aggregate: folded result
  BitVector bitmap;             ///< select/probe: merged, logical row order
  /// Group-by: key -> {aggregate, row count}, merged across every device's
  /// bucket-window passes.
  std::map<int64_t, std::pair<int64_t, int64_t>> groups;
  sim::Tick submitted_ps = 0;
  sim::Tick completed_ps = 0;
  uint64_t leases = 0;          ///< ownership leases spent on this job
};

/// \brief The runtime: queues, lease loop, admission, stealing, recovery.
///
/// One jafar::Driver per array device (the fault PR's watchdog/retry/
/// writeback-checksum path, reused unchanged). Stats register under
/// "array.runtime." in the array's registry; keep the runtime alive for as
/// long as that registry is read.
class NdpRuntime {
 public:
  using JobId = uint64_t;
  using JobCallback = std::function<void(const JobResult&)>;

  NdpRuntime(DimmArray* array, RuntimeConfig config = RuntimeConfig{});
  ~NdpRuntime();
  NDP_DISALLOW_COPY_AND_ASSIGN(NdpRuntime);

  /// Enqueues an asynchronous range select over a placed column. `on_done`
  /// (optional) fires from the event loop at completion; the result is also
  /// retrievable via result() after Drain()/WaitFor().
  Result<JobId> SubmitSelect(const PlacedColumn& col, int64_t lo, int64_t hi,
                             JobPriority priority = JobPriority::kBatch,
                             JobCallback on_done = {});
  /// Enqueues an asynchronous full-column aggregate (kSum/kMin/kMax/kCount).
  Result<JobId> SubmitAggregate(const PlacedColumn& col, jafar::AggKind kind,
                                JobPriority priority = JobPriority::kBatch,
                                JobCallback on_done = {});

  /// Enqueues a semijoin candidate probe of a placed join-key column against
  /// a Bloom `filter_image` (`filter_words` = image size, a power of two;
  /// built with jafar::BloomBitIndex over the build keys). The result bitmap
  /// marks candidate rows — a superset with no false negatives; callers
  /// refine against the exact build-key set (MakeSemiJoinHook does both).
  /// The image is laid into every probing device's rank on first dispatch
  /// there and re-read by the device's timed filter-load at each lease.
  Result<JobId> SubmitProbe(const PlacedColumn& col,
                            std::vector<uint64_t> filter_image,
                            JobPriority priority = JobPriority::kBatch,
                            JobCallback on_done = {});

  /// Enqueues a grouped aggregation of vals[i] by keys[i]. Both columns must
  /// be placed with identical splits (EnsurePlaced's uniform split qualifies
  /// when both have the same row count). Covers arbitrary int64 key domains
  /// by shaping each lease to one device bucket window (see DESIGN.md §12);
  /// clustered keys give full-lease windows, adversarial keys stay exact.
  Result<JobId> SubmitGroupBy(const PlacedColumn& keys,
                              const PlacedColumn& vals, jafar::AggKind kind,
                              JobPriority priority = JobPriority::kBatch,
                              JobCallback on_done = {});

  /// Deadline-carrying select (the serving-ingress admission entry).
  Result<JobId> SubmitSelectWith(const PlacedColumn& col, int64_t lo,
                                 int64_t hi, SubmitOptions opts);

  /// One select of a batch-admission burst: the ingress drains its rings in
  /// bursts and admits the whole burst before any lane wakes, so one poke
  /// pass (not one per request) amortizes queue/lease overhead.
  struct BurstSelect {
    const PlacedColumn* col = nullptr;
    int64_t lo = 0, hi = 0;
    SubmitOptions opts;
  };
  /// Admits every select in `burst`, then wakes the lanes once. Entry i of
  /// the result corresponds to burst[i].
  Result<std::vector<JobId>> SubmitSelectBurst(std::vector<BurstSelect> burst);

  /// Pumps the array's event queue until every submitted job completed.
  Status Drain();
  /// Pumps until one specific job completed (other jobs keep progressing).
  Status WaitFor(JobId id);

  /// Completed job's result, or nullptr while in flight / unknown.
  const JobResult* result(JobId id) const;

  /// Places `col` on first use (cached per column identity) and runs the
  /// predicate through the runtime as an interactive job — the db-layer
  /// pushdown entry (QueryContext::ndp_select).
  db::NdpSelectHook MakePushdownHook();
  /// Batch form: submits every conjunct concurrently, waits for all, and
  /// returns one position list per conjunct (QueryContext::ndp_select_batch).
  db::NdpSelectBatchHook MakePushdownBatchHook();
  /// Semijoin pushdown (QueryContext::ndp_semi_join): builds the Bloom image
  /// and exact key set from the build side host-side, probes the key column
  /// on-device, and refines candidates to a bit-identical semijoin result.
  db::NdpSemiJoinHook MakeSemiJoinHook();
  /// Group-by pushdown (QueryContext::ndp_group_by): places both columns and
  /// runs a device-partial SUM aggregation, returning key -> {sum, count}.
  db::NdpGroupByHook MakeGroupByHook();

  LeaseController& controller(uint32_t channel);
  const RuntimeConfig& config() const { return config_; }
  uint32_t lanes_alive() const;

 private:
  struct Chunk;
  struct Job;
  struct Lane;

  Result<JobId> Submit(const PlacedColumn& col, JobKind kind,
                       jafar::CompareOp op, int64_t lo, int64_t hi,
                       jafar::AggKind agg, SubmitOptions opts, bool poke_lanes,
                       const PlacedColumn* vals = nullptr,
                       std::vector<uint64_t> filter_image = {});
  /// True (and fails + counts the job) when its deadline has already passed.
  bool CancelIfExpired(Job& job);
  Result<PlacedColumn*> EnsurePlaced(const db::Column& col);

  /// Inserts into the lane's (priority, seq)-ordered queue without waking
  /// anyone; Submit uses it to place a whole multi-part job before any poke.
  void InsertChunk(Lane& lane, std::unique_ptr<Chunk> chunk);
  void EnqueueChunk(Lane& lane, std::unique_ptr<Chunk> chunk);
  void Poke(Lane& lane);
  void MaybeDispatch(Lane& lane);
  /// MaybeDispatch's tail, after any utilization refresh: admission control
  /// and lease start.
  void DispatchNow(Lane& lane);
  void StartLease(Lane& lane);
  void OnOwnershipAcquired(Lane& lane);
  void OnLeaseDone(Lane& lane, const Status& status, uint64_t lease_matches);
  void OnOwnershipReleased(Lane& lane);
  void OnWindowEnd(Lane& lane);
  void BeginWindow(Lane& lane);
  /// Samples the lane's channel counters *on the channel's partition* (a
  /// port round-trip in partitioned mode; synchronous in single-wheel mode)
  /// and hands the cumulative (busy_cycles, requests) to `k` back on the
  /// host partition. The §3.3 estimator thus never reads another wheel's
  /// state mid-epoch.
  void SampleChannel(Lane& lane, std::function<void(double, double)> k);
  /// Feeds the elapsed host window to the lane's LeaseController (through
  /// SampleChannel), then runs `k`. Skips the observation (still running
  /// `k`) when a sample for this lane is already in flight.
  void ObserveWindowThen(Lane& lane, std::function<void()> k);
  void RetireChunk(Lane& lane);
  /// Accounts a chunk that will never run again: merges its completed-prefix
  /// bitmap words and completes the job when this was the last live chunk.
  /// The caller still owns (and disposes of) the chunk object itself.
  void RetireChunkImpl(Chunk& c);
  /// Copies the select bitmap for rows [first_row, first_row + rows) from the
  /// device out region at `out_base` into the job's result bitmap. Must run
  /// while the region is still intact — i.e. before the owning lane can lease
  /// a later job's chunk that shares the same placement out region.
  void MergeBitmapRange(Job& job, uint64_t first_row, uint64_t rows,
                        uint64_t out_base);
  void CompleteJob(Job& job);
  void FailJob(Job& job, const Status& status);
  void TrySteal(Lane& thief);
  void HandleLaneFailure(Lane& lane, const Status& status);
  /// Moves `rows` starting at `src_addr`/`first_row` to `target` through a
  /// host-mediated copy with modeled latency. False when the target rank has
  /// no room (the caller must not shrink the source in that case).
  bool TransplantRows(Lane& target, Job& job, JobPriority priority,
                      uint64_t src_addr, uint64_t val_src_addr,
                      uint64_t first_row, uint64_t rows);
  uint64_t StealableRows(const Lane& lane) const;
  /// Lazily allocates + lays the job's Bloom image into the lane's rank
  /// (functional write; the modeled cost is the device's timed filter-load
  /// reads at every probe lease) and returns its base address there.
  Result<uint64_t> EnsureProbeFilter(Lane& lane, Job& job);
  /// Folds one device bucket window (or host-seam row) into job.groups.
  static void MergeGroup(Job& job, int64_t key, int64_t agg, int64_t count);
  /// Estimated time to drain the lane's backlog: stealable rows x the lane's
  /// trusted ps/row EWMA (untrusted lanes borrow the trusted-lane mean).
  double EtaScore(const Lane& lane) const;
  /// Re-evaluates heavy-hitter flags after a lease; pokes idle lanes when a
  /// lane is newly flagged so they volunteer as steal targets immediately.
  void UpdateHeavyHitters();
  double ReadChannelBusyCycles(uint32_t channel) const;
  double ReadChannelRequests(uint32_t channel) const;
  sim::Tick BusCyclesToPs(uint64_t cycles) const;

  DimmArray* array_;
  RuntimeConfig config_;
  sim::EventQueue& eq_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<LeaseController>> controllers_;  ///< per channel
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::map<JobId, JobResult> results_;
  std::map<const db::Column*, PlacedColumn> placed_;
  JobId next_job_id_ = 1;
  uint64_t next_chunk_seq_ = 1;
  uint32_t active_jobs_ = 0;

  /// Registered under "array.runtime.".
  struct RuntimeCounters {
    uint64_t jobs_submitted = 0;
    uint64_t jobs_completed = 0;
    uint64_t jobs_failed = 0;
    uint64_t leases = 0;
    uint64_t admission_defers = 0;
    uint64_t steals = 0;
    uint64_t stolen_pages = 0;
    uint64_t lane_failures = 0;
    uint64_t chunks_reassigned = 0;
    uint64_t deadline_cancellations = 0;
    uint64_t hh_flags = 0;   ///< lanes newly flagged as heavy hitters
    uint64_t eta_steals = 0; ///< steals where ETA picked a different victim
  } counters_;

  std::vector<std::string> busy_paths_rc_, busy_paths_wc_;
  std::vector<std::string> req_paths_rd_, req_paths_wr_;
};

}  // namespace ndp::core
