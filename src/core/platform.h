// Platform presets reproducing Table 1 of the paper: the gem5-like simulated
// system used to isolate JAFAR's raw performance (Figure 3), and the Xeon
// E7-4820 v2-class system used to profile memory-controller idle periods
// (Figure 4). Capacities of the simulated DRAM are scaled down (the backing
// store is sparse, but simulating billions of rows is unnecessary — the
// paper itself uses sampling, §3.1).
#pragma once

#include <string>
#include <vector>

#include "accel/ir.h"
#include "cpu/cache.h"
#include "cpu/core.h"
#include "dram/address.h"
#include "dram/controller.h"
#include "dram/timing.h"
#include "fault/fault_plan.h"
#include "jafar/config.h"
#include "jafar/driver.h"

namespace ndp::core {

/// \brief Everything needed to instantiate a simulated system.
struct PlatformConfig {
  std::string name;
  cpu::CoreConfig core;
  std::vector<cpu::CacheConfig> caches;  ///< L1 first
  sim::Tick frontside_ps = 8000;         ///< LLC-to-memory-controller latency
  dram::DramTiming dram_timing;
  dram::DramOrganization dram_org;
  dram::InterleaveScheme interleave = dram::InterleaveScheme::kContiguous;
  dram::ControllerConfig controller;
  accel::DatapathResources jafar_datapath;  ///< for DeviceConfig::Derive
  uint32_t jafar_output_buffer_bits = 4096;
  /// Which JAFAR datapath generation the DIMM carries: v1_rank_io (the
  /// paper's rank-level comparator, the default) or v2_bank_level
  /// (Membrane-style per-bank filtering). SystemModel overlays the
  /// NDP_DEVICE_GEN environment knob on top (strict parse, like the fault
  /// plan) and picks the matching DeviceConfig deriver.
  jafar::DeviceGeneration device_gen = jafar::DeviceGeneration::kV1RankIo;
  jafar::DriverConfig driver;               ///< page size, watchdog, retries

  /// Fault-injection campaign (src/fault). Defaults to inactive (all-zero
  /// rates); benches and tests set it programmatically, and SystemModel
  /// overlays the NDP_FAULT_* environment on top (see FaultPlan::FromEnv).
  /// Only honoured when built with NDP_FAULT_INJECT.
  fault::FaultPlan fault_plan;

  /// Table 1, left column: one 1 GHz out-of-order core, 64 kB L1 + 128 kB L2,
  /// 2 GB DDR3 (capacity scaled in simulation), no prefetching — "fairly
  /// simple in order to isolate the raw performance improvement".
  static PlatformConfig Gem5();

  /// Table 1, right column: Xeon E7-4820 v2-class — 2 GHz, 256 kB L1 / 2 MB
  /// L2 / 16 MB L3 slices, multi-channel DDR3 with prefetching.
  static PlatformConfig Xeon();

  /// Renders the platform as a Table 1-style specification block.
  std::string ToString() const;
};

}  // namespace ndp::core
