// Select-pushdown planning: the hardware/software co-design glue. A cost
// model compares the CPU select path against the JAFAR path (including the
// rank-ownership hand-off) and the planner installs the NDP hook into a
// QueryContext only when pushing down is predicted to win.
#pragma once

#include <cstdint>
#include <string>

#include "core/system.h"

namespace ndp::core {

/// \brief Analytic cost model, calibrated by the platform's parameters.
///
/// CPU select: per-row pipeline cost plus memory-bandwidth-bound streaming of
/// the column through the cache hierarchy; an extra per-qualifying-row cost
/// for result recording (the §3.2 effect).
/// JAFAR select: one burst per tCCD plus bitmap write-back, row activations,
/// per-page invocation overhead, and the MR3 ownership round trip.
struct CostModel {
  /// Estimated CPU select time in picoseconds.
  static double CpuSelectPs(const PlatformConfig& p, uint64_t rows,
                            double selectivity);
  /// Estimated JAFAR select time in picoseconds (including ownership).
  static double JafarSelectPs(const PlatformConfig& p, uint64_t rows);

  /// Estimated CPU hash semijoin time: hash-table build over the build side
  /// plus a pointer-chasing probe per probe row (the table misses cache for
  /// the row counts where pushdown is interesting).
  static double CpuSemiJoinPs(const PlatformConfig& p, uint64_t build_rows,
                              uint64_t probe_rows);
  /// Estimated JAFAR Bloom-probe time over the probe key column: the select
  /// streaming shape plus the per-lease filter-image preload into the probe
  /// SRAM and the host-side refinement of the candidate bitmap.
  static double JafarProbePs(const PlatformConfig& p, uint64_t probe_rows,
                             uint64_t filter_kb);

  /// Estimated CPU hash group-by time over `rows` key/value pairs.
  static double CpuGroupByPs(const PlatformConfig& p, uint64_t rows);
  /// Estimated JAFAR group-by time: streams two columns (keys + values)
  /// through the device and drains the bucket SRAM each lease.
  static double JafarGroupByPs(const PlatformConfig& p, uint64_t rows);
};

/// Outcome of a pushdown decision, for logging and tests.
struct PushdownDecision {
  bool use_jafar = false;
  double cpu_estimate_ps = 0;
  double jafar_estimate_ps = 0;
  std::string reason;
};

/// Rejects device select results that are not strictly increasing in-range
/// position lists (a faulted device leaking a partial/duplicated result
/// through recovery). Returning an error routes the select to the CPU path.
Status ValidatePushdownResult(const db::PositionList& positions,
                              uint64_t num_rows);

/// Lowers a column-store predicate to JAFAR's inclusive [lo, hi] range form
/// (both filter ALUs, §2.2). kNe is not expressible as one range and returns
/// Unimplemented — callers fall back to the CPU path.
Status PredToJafarRange(const db::Pred& pred, int64_t* lo, int64_t* hi);

/// \brief Decides, per select, whether to push down to JAFAR.
class PushdownPlanner {
 public:
  explicit PushdownPlanner(SystemModel* system) : system_(system) {}

  /// Decision for a select of `rows` rows at estimated `selectivity`.
  PushdownDecision Decide(uint64_t rows, double selectivity) const;

  /// Decision for a semijoin probe (build_rows hash-table entries, probe_rows
  /// streamed keys) using the device Bloom-probe job.
  PushdownDecision DecideSemiJoin(uint64_t build_rows, uint64_t probe_rows,
                                  uint64_t filter_kb) const;
  /// Decision for a full-column group-by of `rows` key/value pairs.
  PushdownDecision DecideGroupBy(uint64_t rows) const;

  /// Installs an NDP hook into `ctx` that consults the cost model per call
  /// (selectivity estimate: `default_selectivity`).
  void Install(db::QueryContext* ctx, double default_selectivity = 0.5);

  /// Wraps externally-built join hooks (e.g. NdpRuntime::MakeSemiJoinHook /
  /// MakeGroupByHook) with the cost model and result-hygiene checks, then
  /// installs them into `ctx`. A declined or failed call returns an error, so
  /// the operator layer falls back to the CPU path. `filter_kb` is the Bloom
  /// image size the semijoin hook will build (NDP_JOIN_FILTER_KB).
  void InstallJoin(db::QueryContext* ctx, db::NdpSemiJoinHook semi_join,
                   db::NdpGroupByHook group_by, uint64_t filter_kb = 16);

 private:
  SystemModel* system_;
};

}  // namespace ndp::core
