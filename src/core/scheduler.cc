#include "core/scheduler.h"

#include <algorithm>

namespace ndp::core {

uint64_t RowsPerLeaseCycles(const dram::DramTiming& t,
                            const jafar::DeviceConfig& dev,
                            uint64_t lease_bus_cycles) {
  // Burst rate: 8 rows per tCCD bus cycles; subtract the per-page invocation
  // overhead (one device job per 4 KB page).
  uint64_t rows_per_page = 4096 / dev.elem_bytes;
  // Invocation overhead is in device cycles; convert to bus cycles.
  uint64_t overhead_bus_cycles =
      (dev.invocation_overhead_cycles * dev.clock.period_ps() + t.tck_ps - 1) /
      t.tck_ps;
  uint64_t cycles_per_page = rows_per_page / 8 * t.tccd + overhead_bus_cycles;
  uint64_t pages = lease_bus_cycles / std::max<uint64_t>(1, cycles_per_page);
  if (pages == 0) pages = 1;
  return pages * rows_per_page;
}

uint64_t NdpScheduler::RowsPerLease() const {
  return RowsPerLeaseCycles(system_->config().dram_timing,
                            system_->jafar().config(),
                            config_.lease_bus_cycles);
}

Result<NdpScheduler::SlicedResult> NdpScheduler::RunSlicedSelect(
    const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t col_base = system_->PinColumn(col);
  uint64_t bitmap = system_->Allocate((col.size() + 7) / 8 + 64, 4096);
  uint64_t rows_per_slice = RowsPerLease();
  sim::EventQueue& eq = system_->eq();
  jafar::Driver& driver = system_->driver();
  const dram::DramTiming& t = system_->config().dram_timing;

  SlicedResult result;
  sim::Tick start = eq.Now();
  uint64_t row = 0;
  while (row < col.size()) {
    uint64_t rows = std::min<uint64_t>(rows_per_slice, col.size() - row);
    bool owned = false;
    driver.AcquireOwnership([&owned](sim::Tick) { owned = true; });
    if (!eq.RunUntilTrue([&] { return owned; })) {
      return Status::Internal("ownership acquire stalled");
    }
    ++result.ownership_transfers;

    bool done = false;
    jafar::SelectResult sr;
    // Single-query lease scheduler predates the multi-query runtime; it owns
    // the whole channel for the slice. ndp-lint: runtime-bypass-ok
    NDP_RETURN_NOT_OK(driver.SelectJafar(
        col_base + row * 8, lo, hi, bitmap + row / 8, rows, /*flag_addr=*/0,
        [&done, &sr](const jafar::SelectResult& r) {
          sr = r;
          done = true;
        }));
    if (!eq.RunUntilTrue([&] { return done; })) {
      return Status::Internal("sliced select stalled");
    }
    result.matches += sr.num_output_rows;
    ++result.slices;

    bool released = false;
    driver.ReleaseOwnership([&released](sim::Tick) { released = true; });
    if (!eq.RunUntilTrue([&] { return released; })) {
      return Status::Internal("ownership release stalled");
    }
    ++result.ownership_transfers;

    // Guaranteed host window: the controller drains its queued requests.
    eq.RunUntil(eq.Now() + config_.host_window_bus_cycles * t.tck_ps);
    row += rows;
  }
  result.duration_ps = eq.Now() - start;
  return result;
}

}  // namespace ndp::core
