// Time-sliced rank-ownership scheduling (§2.2, "Coordinating DRAM Access":
// "the query manager can grant 'ownership' of a DRAM rank to JAFAR for a
// specified number of cycles, knowing that JAFAR will finish its allotted
// work in that amount of time"). The NdpScheduler runs a select as a sequence
// of leases: acquire MR3/MPR ownership, process exactly the rows that fit the
// lease, release, and leave the host a guaranteed window to drain its queued
// requests — bounding the latency the co-running CPU workload observes.
#pragma once

#include <cstdint>

#include "core/system.h"

namespace ndp::core {

/// Rows JAFAR can stream within `lease_bus_cycles` of rank ownership (one
/// 8-row burst per tCCD, minus the per-page invocation overhead), rounded
/// down to whole 4 KB pages — at least one page. Shared between the fixed
/// time-slicing below and the adaptive runtime (core/runtime.h).
uint64_t RowsPerLeaseCycles(const dram::DramTiming& timing,
                            const jafar::DeviceConfig& dev,
                            uint64_t lease_bus_cycles);

struct SchedulerConfig {
  /// Ownership lease granted to JAFAR per slice, in DDR3 bus cycles.
  uint64_t lease_bus_cycles = 20000;
  /// Host window between leases (the controller drains its queues here).
  uint64_t host_window_bus_cycles = 4000;
};

/// \brief Runs JAFAR jobs under time-sliced rank ownership.
class NdpScheduler {
 public:
  NdpScheduler(SystemModel* system, SchedulerConfig config)
      : system_(system), config_(config) {}

  struct SlicedResult {
    sim::Tick duration_ps = 0;
    uint64_t matches = 0;
    uint64_t slices = 0;
    uint64_t ownership_transfers = 0;  ///< MRS round trips (2 per slice)
  };

  /// Rows JAFAR can stream within one lease (one burst of 8 rows per tCCD,
  /// minus the invocation overhead), rounded down to whole 4 KB pages.
  uint64_t RowsPerLease() const;

  /// Runs `lo <= v <= hi` over `col` as leased slices. The host controller
  /// serves its queues between slices, so co-running CPU work on the same
  /// rank keeps progressing.
  Result<SlicedResult> RunSlicedSelect(const db::Column& col, int64_t lo,
                                       int64_t hi);

  const SchedulerConfig& config() const { return config_; }

 private:
  SystemModel* system_;
  SchedulerConfig config_;
};

}  // namespace ndp::core
