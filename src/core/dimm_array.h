// Multi-DIMM JAFAR (§4 "Memory Management": "adding support for more than one
// DIMM is an essential future step"). A DimmArray hosts one JAFAR unit per
// rank across all channels, range-partitions a column over the units, runs
// their jobs in parallel, and merges the per-partition bitmaps — the
// natural scale-out of select pushdown.
#pragma once

#include <memory>
#include <vector>

#include "db/column.h"
#include "db/operators.h"
#include "dram/dram_system.h"
#include "jafar/device.h"
#include "util/bitvector.h"
#include "util/stats_registry.h"

namespace ndp::core {

/// \brief A memory system with one JAFAR per rank.
class DimmArray {
 public:
  /// Builds `channels x ranks_per_channel` units over a fresh DRAM system.
  DimmArray(dram::DramTiming timing, uint32_t channels,
            uint32_t ranks_per_channel, jafar::DeviceConfig device_config,
            uint32_t rows_per_bank = 8192);
  NDP_DISALLOW_COPY_AND_ASSIGN(DimmArray);

  uint32_t num_devices() const { return static_cast<uint32_t>(devices_.size()); }
  sim::EventQueue& eq() { return eq_; }
  dram::DramSystem& dram() { return *dram_; }
  jafar::Device& device(uint32_t i) { return *devices_[i]; }

  /// Grants every device its rank (MR3/MPR on each controller). Synchronous.
  void AcquireAllOwnership();

  /// Range-partitions `col` across the devices (device i gets the i-th
  /// contiguous slice) and copies the slices into their ranks. Returns the
  /// partition row counts.
  std::vector<uint64_t> LoadPartitioned(const db::Column& col);

  struct ParallelResult {
    sim::Tick duration_ps = 0;   ///< makespan across devices
    uint64_t matches = 0;
    BitVector bitmap;            ///< merged, in logical row order
    /// Registry delta over the parallel run ("array.dram.*", "array.dev<i>.*").
    StatsSnapshot counters;
  };

  /// Runs `lo <= v <= hi` on every partition in parallel and merges the
  /// bitmaps. LoadPartitioned must have been called.
  Result<ParallelResult> RunParallelSelect(int64_t lo, int64_t hi);

  /// Registry over all controllers and devices (paths under "array.").
  const StatsRegistry& stats() const { return stats_; }

 private:
  struct Partition {
    uint32_t device = 0;
    uint64_t col_base = 0;
    uint64_t out_base = 0;
    uint64_t first_row = 0;
    uint64_t rows = 0;
  };

  sim::EventQueue eq_;
  dram::DramTiming timing_;
  StatsRegistry stats_;  ///< declared before the components registered in it
  std::unique_ptr<dram::DramSystem> dram_;
  jafar::DeviceConfig device_config_;
  std::vector<std::unique_ptr<jafar::Device>> devices_;
  std::vector<Partition> partitions_;
  uint64_t total_rows_ = 0;
};

}  // namespace ndp::core
