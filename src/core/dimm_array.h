// Multi-DIMM JAFAR (§4 "Memory Management": "adding support for more than one
// DIMM is an essential future step"). A DimmArray hosts one JAFAR unit per
// rank across all channels, range-partitions a column over the units, runs
// their jobs in parallel, and merges the per-partition bitmaps — the
// natural scale-out of select pushdown.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "db/column.h"
#include "db/operators.h"
#include "dram/dram_system.h"
#include "jafar/device.h"
#include "sim/partition.h"
#include "util/bitvector.h"
#include "util/stats_registry.h"

namespace ndp::core {

/// One device's contiguous slice of a placed column.
struct DevicePlacement {
  uint32_t device = 0;
  uint64_t col_base = 0;   ///< physical address of the slice (page-aligned)
  uint64_t out_base = 0;   ///< physical address of the slice's bitmap
  uint64_t first_row = 0;  ///< logical row of the slice start (64-aligned)
  uint64_t rows = 0;       ///< may be 0 (degenerate splits keep all devices)
};

/// A column laid out across the array's device ranks.
struct PlacedColumn {
  uint64_t total_rows = 0;
  std::vector<DevicePlacement> parts;  ///< one entry per device, in order
};

/// \brief A memory system with one JAFAR per rank.
class DimmArray {
 public:
  /// Builds `channels x ranks_per_channel` units over a fresh DRAM system.
  /// With `partitioned` set, the simulation splits into channels + 1 timing-
  /// wheel partitions (one per channel plus a host partition) advanced by
  /// conservative epoch barriers on NDP_SIM_THREADS workers; cross-partition
  /// interactions cost one lookahead hop (one DDR3 bus cycle) each way. The
  /// default single-wheel mode is bit-identical to the seed kernel and
  /// serves as the ordering oracle.
  DimmArray(dram::DramTiming timing, uint32_t channels,
            uint32_t ranks_per_channel, jafar::DeviceConfig device_config,
            uint32_t rows_per_bank = 8192, bool partitioned = false);
  NDP_DISALLOW_COPY_AND_ASSIGN(DimmArray);

  uint32_t num_devices() const { return static_cast<uint32_t>(devices_.size()); }
  /// Host-side wheel: the host partition's queue in partitioned mode, the
  /// single global queue otherwise.
  sim::EventQueue& eq() {
    return partitions_ ? partitions_->queue(host_partition_) : eq_;
  }
  bool partitioned() const { return partitions_ != nullptr; }
  sim::PartitionSet* partitions() { return partitions_.get(); }
  dram::DramSystem& dram() { return *dram_; }
  jafar::Device& device(uint32_t i) { return *devices_[i]; }
  const dram::DramTiming& timing() const { return timing_; }
  const jafar::DeviceConfig& device_config() const { return device_config_; }

  /// Grants every device its rank (MR3/MPR on each controller). Synchronous.
  void AcquireAllOwnership();

  // -- Barrier-safe execution & cross-partition ports -----------------------
  // In partitioned mode these are the only legal ways for host-side code to
  // drive the simulation or to interact with a device/controller that lives
  // on another partition's wheel. In single-wheel mode they collapse to the
  // legacy behavior (immediate call / plain eq() run), so the runtime keeps
  // one code path for both.

  /// Runs `fn` on `device`'s channel partition one lookahead hop from now
  /// (immediately, in single-wheel mode).
  void PostToDevice(uint32_t device, std::function<void()> fn);
  /// Runs `fn` on the host partition one lookahead hop from now
  /// (immediately, in single-wheel mode). Call from the device's partition.
  void PostToHost(uint32_t device, std::function<void()> fn);

  /// Pumps the simulation until `pred()` holds (at epoch barriers in
  /// partitioned mode, per event otherwise) or no work remains.
  template <typename Pred>
  bool RunUntilTrue(Pred&& pred) {
    if (partitions_) return partitions_->RunUntilTrue(std::forward<Pred>(pred));
    return eq_.RunUntilTrue(std::forward<Pred>(pred));
  }
  /// Runs every event at time <= `until`, then advances Now() to `until`.
  void RunUntil(sim::Tick until) {
    if (partitions_) {
      partitions_->RunUntil(until);
    } else {
      eq_.RunUntil(until);
    }
  }

  /// Splits `rows` into per-device counts (size n, zeros allowed), every
  /// count a multiple of 64 except a single sub-64 tail on the last non-empty
  /// device — so partition starts never straddle bitmap words. `weights`
  /// skews the split (empty = uniform); exposed for partition-rounding tests.
  static std::vector<uint64_t> SplitRows(uint64_t rows, uint32_t n,
                                         const std::vector<double>& weights);

  /// Bump-allocates `bytes` in `device`'s rank (functional space for column
  /// slices, bitmaps, and steal scratch). ResourceExhausted when full.
  Result<uint64_t> AllocOnDevice(uint32_t device, uint64_t bytes,
                                 uint64_t align = 4096);
  /// Releases every device's bump allocator back to its rank base.
  void ResetAllocators();

  /// Lays `col` out across the device ranks per SplitRows and copies the
  /// slice data into the backing store. Does not touch the partitions used
  /// by RunParallelSelect; the runtime places many columns side by side.
  Result<PlacedColumn> PlaceColumn(const db::Column& col,
                                   const std::vector<double>& weights = {});

  /// Range-partitions `col` across the devices (device i gets the i-th
  /// contiguous slice) and copies the slices into their ranks. Returns the
  /// per-device partition row counts (size num_devices(), zeros allowed).
  /// Resets the allocators first: the legacy exclusive-use entry point.
  std::vector<uint64_t> LoadPartitioned(const db::Column& col);

  struct ParallelResult {
    sim::Tick duration_ps = 0;   ///< makespan across devices
    uint64_t matches = 0;
    BitVector bitmap;            ///< merged, in logical row order
    /// Registry delta over the parallel run ("array.dram.*", "array.dev<i>.*").
    StatsSnapshot counters;
  };

  /// Runs `lo <= v <= hi` on every partition in parallel and merges the
  /// bitmaps. LoadPartitioned must have been called.
  Result<ParallelResult> RunParallelSelect(int64_t lo, int64_t hi);

  /// Registry over all controllers and devices (paths under "array.").
  const StatsRegistry& stats() const { return stats_; }
  /// Mutable registry, for components mounted on top of the array (the
  /// multi-query runtime registers under "array.runtime."). Such components
  /// must outlive any registry read, like every other registrant.
  StatsRegistry* mutable_stats() { return &stats_; }

 private:
  sim::EventQueue eq_;  ///< single-wheel (oracle) mode's only queue
  std::unique_ptr<sim::PartitionSet> partitions_;  ///< null in legacy mode
  uint32_t host_partition_ = 0;  ///< partition index after the channels
  dram::DramTiming timing_;
  StatsRegistry stats_;  ///< declared before the components registered in it
  std::unique_ptr<dram::DramSystem> dram_;
  jafar::DeviceConfig device_config_;
  std::vector<std::unique_ptr<jafar::Device>> devices_;
  std::vector<uint64_t> alloc_next_;   ///< per-device bump-allocator cursor
  std::vector<DevicePlacement> parts_;  ///< LoadPartitioned state
  uint64_t total_rows_ = 0;

  uint64_t RankBase(uint32_t device) const;
};

}  // namespace ndp::core
