#include "core/system.h"

#include "util/logging.h"
#include "util/macros.h"

namespace ndp::core {

SystemModel::SystemModel(PlatformConfig config) : config_(std::move(config)) {
  dram_ = std::make_unique<dram::DramSystem>(
      &eq_, config_.dram_timing, config_.dram_org, config_.interleave,
      config_.controller);
  hierarchy_ = std::make_unique<cpu::CacheHierarchy>(
      &eq_, config_.core.clock, config_.caches, dram_.get(),
      config_.frontside_ps);
  core_ = std::make_unique<cpu::Core>(&eq_, config_.core, hierarchy_->top());
  device_config_ =
      jafar::DeviceConfig::Derive(config_.dram_timing, config_.jafar_datapath)
          .ValueOrDie();
  device_config_.output_buffer_bits = config_.jafar_output_buffer_bits;
  device_ = std::make_unique<jafar::Device>(dram_.get(), 0, 0, device_config_);
  driver_ = std::make_unique<jafar::Driver>(device_.get(),
                                            &dram_->controller(0));
}

uint64_t SystemModel::Allocate(uint64_t bytes, uint64_t align) {
  NDP_CHECK(align > 0 && (align & (align - 1)) == 0);
  next_alloc_ = (next_alloc_ + align - 1) & ~(align - 1);
  uint64_t base = next_alloc_;
  next_alloc_ += bytes;
  NDP_CHECK_MSG(next_alloc_ <= dram_->organization().BytesPerRank(),
                "out of JAFAR-rank memory");
  return base;
}

uint64_t SystemModel::PinColumn(const db::Column& col) {
  auto it = pinned_.find(&col);
  if (it != pinned_.end()) return it->second;
  uint64_t base = Allocate(col.SizeBytes());
  dram_->backing_store().Write(base, col.data(), col.SizeBytes());
  pinned_.emplace(&col, base);
  return base;
}

sim::Tick SystemModel::PumpUntil(const bool* done) {
  bool ok = eq_.RunUntilTrue([done] { return *done; });
  NDP_CHECK_MSG(ok, "simulation drained without completing the operation");
  return eq_.Now();
}

Result<SystemModel::CpuRunResult> SystemModel::RunCpuSelect(
    const db::Column& col, int64_t lo, int64_t hi, db::SelectMode mode,
    bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  uint64_t col_base = PinColumn(col);
  uint64_t out_base = Allocate(col.size() * 4);
  if (cold_caches) hierarchy_->InvalidateAll();
  core_->ResetStats();

  cpu::SelectScanStream stream(col.data(), col.size(), lo, hi, col_base,
                               out_base,
                               mode == db::SelectMode::kPredicated);
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);

  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats();
  r.matches = stream.matches();
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::RunCpuAggregate(
    const db::Column& col, bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  uint64_t col_base = PinColumn(col);
  if (cold_caches) hierarchy_->InvalidateAll();
  core_->ResetStats();
  cpu::AggregateScanStream stream(col.size(), col_base);
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats();
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::RunCpuProject(
    const db::Column& col, const db::PositionList& positions,
    bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  uint64_t col_base = PinColumn(col);
  uint64_t pos_base = Allocate(positions.size() * 4);
  uint64_t out_base = Allocate(positions.size() * 8);
  if (cold_caches) hierarchy_->InvalidateAll();
  core_->ResetStats();
  cpu::ProjectGatherStream stream(positions.data(), positions.size(), pos_base,
                                  col_base, out_base);
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats();
  r.matches = positions.size();
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::ReplayTrace(
    const std::vector<cpu::TraceEvent>& events, bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  if (cold_caches) hierarchy_->InvalidateAll();
  core_->ResetStats();
  cpu::ReplayStream stream(&events);
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats();
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::RunStream(
    cpu::UopStream* stream, bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  if (cold_caches) hierarchy_->InvalidateAll();
  core_->ResetStats();
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats();
  return r;
}

Result<SystemModel::JafarRunResult> SystemModel::RunJafarSelect(
    const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t col_base = PinColumn(col);
  uint64_t bitmap_base = Allocate((col.size() + 7) / 8 + 64, 4096);
  uint64_t flag_addr = Allocate(64, 64);

  JafarRunResult r;
  r.bitmap_addr = bitmap_base;
  jafar::DeviceStats before = device_->stats();
  sim::Tick start = eq_.Now();

  // Acquire rank ownership through the memory controller (MR3/MPR, §2.2).
  bool owned = false;
  driver_->AcquireOwnership([&owned](sim::Tick) { owned = true; });
  sim::Tick own_at = PumpUntil(&owned);
  r.ownership_ps = own_at - start;

  bool done = false;
  jafar::SelectResult select_result;
  NDP_RETURN_NOT_OK(driver_->SelectJafar(
      col_base, lo, hi, bitmap_base, col.size(), flag_addr,
      [&done, &select_result](const jafar::SelectResult& sr) {
        select_result = sr;
        done = true;
      }));
  PumpUntil(&done);
  if (driver_->registers().Read(jafar::Reg::kStatus) ==
      static_cast<uint64_t>(jafar::DeviceStatus::kError)) {
    return Status::Internal("JAFAR select failed (status register = ERROR)");
  }

  bool released = false;
  driver_->ReleaseOwnership([&released](sim::Tick) { released = true; });
  sim::Tick end = PumpUntil(&released);
  r.ownership_ps += end - select_result.completed_at;

  r.duration_ps = end - start;
  r.matches = select_result.num_output_rows;
  // Per-run device stats (delta against the snapshot).
  r.stats = device_->stats();
  r.stats.jobs_completed -= before.jobs_completed;
  r.stats.rows_processed -= before.rows_processed;
  r.stats.matches -= before.matches;
  r.stats.bursts_read -= before.bursts_read;
  r.stats.bursts_written -= before.bursts_written;
  r.stats.activates -= before.activates;
  r.stats.data_wait_ps -= before.data_wait_ps;
  r.stats.engine_busy_ps -= before.engine_busy_ps;
  r.stats.total_busy_ps -= before.total_busy_ps;
  r.stats.energy_fj -= before.energy_fj;
  return r;
}

std::string SystemModel::DumpStats() const {
  char line[160];
  std::string out;
  auto emit = [&](const char* name, double v) {
    std::snprintf(line, sizeof(line), "%-40s %.0f\n", name, v);
    out += line;
  };
  out += "---------- simulated system statistics ----------\n";
  emit("sim.ticks_ps", static_cast<double>(eq_.Now()));
  const cpu::CoreStats& cs = core_->stats();
  emit("core.cycles", static_cast<double>(cs.cycles));
  emit("core.uops_retired", static_cast<double>(cs.uops_retired));
  emit("core.loads", static_cast<double>(cs.loads));
  emit("core.stores", static_cast<double>(cs.stores));
  emit("core.branches", static_cast<double>(cs.branches));
  emit("core.mispredicts", static_cast<double>(cs.mispredicts));
  emit("core.rob_full_cycles", static_cast<double>(cs.rob_full_cycles));
  emit("core.max_retire_gap_ps", static_cast<double>(cs.max_retire_gap_ps));
  for (size_t l = 0; l < hierarchy_->num_levels(); ++l) {
    const cpu::CacheStats& s =
        const_cast<cpu::CacheHierarchy&>(*hierarchy_).level(l).stats();
    std::string prefix = "cache.L" + std::to_string(l + 1) + ".";
    emit((prefix + "hits").c_str(), static_cast<double>(s.hits));
    emit((prefix + "misses").c_str(), static_cast<double>(s.misses));
    emit((prefix + "mshr_merges").c_str(), static_cast<double>(s.mshr_merges));
    emit((prefix + "writebacks").c_str(), static_cast<double>(s.writebacks));
    emit((prefix + "prefetches").c_str(),
         static_cast<double>(s.prefetches_issued));
  }
  dram::ControllerCounters mc = dram_->TotalCounters();
  emit("mem.reads_served", static_cast<double>(mc.reads_served));
  emit("mem.writes_served", static_cast<double>(mc.writes_served));
  emit("mem.row_hits", static_cast<double>(mc.row_hits));
  emit("mem.row_misses", static_cast<double>(mc.row_misses));
  emit("mem.row_conflicts", static_cast<double>(mc.row_conflicts));
  emit("mem.rc_busy_ps", static_cast<double>(mc.read_queue_busy_ticks));
  emit("mem.wc_busy_ps", static_cast<double>(mc.write_queue_busy_ticks));
  const jafar::DeviceStats& js = device_->stats();
  emit("jafar.jobs", static_cast<double>(js.jobs_completed));
  emit("jafar.rows", static_cast<double>(js.rows_processed));
  emit("jafar.matches", static_cast<double>(js.matches));
  emit("jafar.bursts_read", static_cast<double>(js.bursts_read));
  emit("jafar.bursts_written", static_cast<double>(js.bursts_written));
  emit("jafar.activates", static_cast<double>(js.activates));
  emit("jafar.energy_fj", js.energy_fj);
  emit("jafar.data_wait_ps", static_cast<double>(js.data_wait_ps));
  emit("jafar.engine_busy_ps", static_cast<double>(js.engine_busy_ps));
  return out;
}

db::NdpSelectHook SystemModel::MakePushdownHook() {
  return [this](const db::Column& col,
                const db::Pred& pred) -> Result<db::PositionList> {
    int64_t lo, hi;
    switch (pred.op) {
      case db::Pred::Op::kBetween: lo = pred.lo; hi = pred.hi; break;
      case db::Pred::Op::kEq: lo = pred.lo; hi = pred.lo; break;
      case db::Pred::Op::kLe: lo = INT64_MIN; hi = pred.lo; break;
      case db::Pred::Op::kLt: lo = INT64_MIN; hi = pred.lo - 1; break;
      case db::Pred::Op::kGe: lo = pred.lo; hi = INT64_MAX; break;
      case db::Pred::Op::kGt: lo = pred.lo + 1; hi = INT64_MAX; break;
      default:
        return Status::Unimplemented("predicate not supported by JAFAR");
    }
    NDP_ASSIGN_OR_RETURN(JafarRunResult run, RunJafarSelect(col, lo, hi));
    // Read the bitmap back (the CPU would stream it through its caches).
    BitVector bm(col.size());
    for (size_t w = 0; w < bm.num_words(); ++w) {
      bm.SetWord(w, dram_->backing_store().Read64(run.bitmap_addr + w * 8));
    }
    return db::BitmapToPositions(bm);
  };
}

}  // namespace ndp::core
