#include "core/system.h"

#include "core/pushdown.h"
#include "util/logging.h"
#include "util/macros.h"

namespace ndp::core {

SystemModel::SystemModel(PlatformConfig config) : config_(std::move(config)) {
  StatsScope root(&stats_, "system");
  root.Counter("ticks_ps",
               std::function<uint64_t()>([this] { return eq_.Now(); }));
  dram_ = std::make_unique<dram::DramSystem>(
      &eq_, config_.dram_timing, config_.dram_org, config_.interleave,
      config_.controller, root.Sub("dram"));
  hierarchy_ = std::make_unique<cpu::CacheHierarchy>(
      &eq_, config_.core.clock, config_.caches, dram_.get(),
      config_.frontside_ps, root.Sub("cpu"));
  core_ = std::make_unique<cpu::Core>(&eq_, config_.core, hierarchy_->top(),
                                      root.Sub("cpu").Sub("core"));
  // Overlay the NDP_DEVICE_GEN knob (strict parse: a typo must fail loudly,
  // not silently run the wrong hardware), then derive the device timing with
  // the generation's deriver — v2 additionally schedules the select kernel on
  // the narrowed per-bank resources to get the bank comparator's rate.
  Result<jafar::DeviceGeneration> gen =
      jafar::DeviceGenerationFromEnv(config_.device_gen);
  NDP_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  config_.device_gen = gen.ValueOrDie();
  device_config_ =
      (config_.device_gen == jafar::DeviceGeneration::kV2BankLevel
           ? jafar::DeviceConfig::DeriveBank(config_.dram_timing,
                                             config_.dram_org,
                                             config_.jafar_datapath)
           : jafar::DeviceConfig::Derive(config_.dram_timing,
                                         config_.jafar_datapath))
          .ValueOrDie();
  device_config_.output_buffer_bits = config_.jafar_output_buffer_bits;
  device_ = std::make_unique<jafar::Device>(dram_.get(), 0, 0, device_config_,
                                            root.Sub("jafar").Sub("dev0"));
  driver_ = std::make_unique<jafar::Driver>(device_.get(), &dram_->controller(0),
                                            config_.driver, root.Sub("jafar"));

  StatsScope core_scope = root.Sub("core");
  core_scope.Counter("pushdown_fallbacks", &pushdown_fallbacks_);
  core_scope.Counter("degraded_mode", &degraded_mode_);
  core_scope.Counter("pushdown_probes", &pushdown_probes_);

#ifdef NDP_FAULT_INJECT
  // Overlay the NDP_FAULT_* environment on the programmatic plan, and attach
  // an injector to the device only when some rate is nonzero — a system with
  // an inactive plan takes no RNG draws and stays byte-identical to a
  // fault-free build.
  Result<fault::FaultPlan> plan = fault::FaultPlan::FromEnv(config_.fault_plan);
  NDP_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
  if (plan.ValueOrDie().active()) {
    injector_ = std::make_unique<fault::FaultInjector>(plan.ValueOrDie(),
                                                       root.Sub("fault"));
    device_->set_fault_injector(injector_.get());
  }
#endif
}

uint64_t SystemModel::Allocate(uint64_t bytes, uint64_t align) {
  NDP_CHECK(align > 0 && (align & (align - 1)) == 0);
  next_alloc_ = (next_alloc_ + align - 1) & ~(align - 1);
  uint64_t base = next_alloc_;
  next_alloc_ += bytes;
  NDP_CHECK_MSG(next_alloc_ <= dram_->organization().BytesPerRank(),
                "out of JAFAR-rank memory");
  return base;
}

uint64_t SystemModel::PinColumn(const db::Column& col) {
  auto it = pinned_.find(&col);
  if (it != pinned_.end()) return it->second;
  uint64_t base = Allocate(col.SizeBytes());
  dram_->backing_store().Write(base, col.data(), col.SizeBytes());
  pinned_.emplace(&col, base);
  return base;
}

sim::Tick SystemModel::PumpUntil(const bool* done) {
  bool ok = eq_.RunUntilTrue([done] { return *done; });
  NDP_CHECK_MSG(ok, "simulation drained without completing the operation");
  return eq_.Now();
}

Result<SystemModel::CpuRunResult> SystemModel::RunCpuSelect(
    const db::Column& col, int64_t lo, int64_t hi, db::SelectMode mode,
    bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  uint64_t col_base = PinColumn(col);
  uint64_t out_base = Allocate(col.size() * 4);
  if (cold_caches) hierarchy_->InvalidateAll();

  cpu::SelectScanStream stream(col.data(), col.size(), lo, hi, col_base,
                               out_base,
                               mode == db::SelectMode::kPredicated);
  cpu::CoreStats core_before = core_->stats();
  StatsSnapshot before = stats_.Snapshot();
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);

  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats().DeltaSince(core_before);
  r.counters = stats_.Snapshot().DeltaSince(before);
  r.matches = stream.matches();
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::RunCpuAggregate(
    const db::Column& col, bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  uint64_t col_base = PinColumn(col);
  if (cold_caches) hierarchy_->InvalidateAll();
  cpu::AggregateScanStream stream(col.size(), col_base);
  cpu::CoreStats core_before = core_->stats();
  StatsSnapshot before = stats_.Snapshot();
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats().DeltaSince(core_before);
  r.counters = stats_.Snapshot().DeltaSince(before);
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::RunCpuProject(
    const db::Column& col, const db::PositionList& positions,
    bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  uint64_t col_base = PinColumn(col);
  uint64_t pos_base = Allocate(positions.size() * 4);
  uint64_t out_base = Allocate(positions.size() * 8);
  if (cold_caches) hierarchy_->InvalidateAll();
  cpu::ProjectGatherStream stream(positions.data(), positions.size(), pos_base,
                                  col_base, out_base);
  cpu::CoreStats core_before = core_->stats();
  StatsSnapshot before = stats_.Snapshot();
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats().DeltaSince(core_before);
  r.counters = stats_.Snapshot().DeltaSince(before);
  r.matches = positions.size();
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::ReplayTrace(
    const std::vector<cpu::TraceEvent>& events, bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  if (cold_caches) hierarchy_->InvalidateAll();
  cpu::ReplayStream stream(&events);
  cpu::CoreStats core_before = core_->stats();
  StatsSnapshot before = stats_.Snapshot();
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(&stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats().DeltaSince(core_before);
  r.counters = stats_.Snapshot().DeltaSince(before);
  return r;
}

Result<SystemModel::CpuRunResult> SystemModel::RunStream(
    cpu::UopStream* stream, bool cold_caches) {
  if (core_->busy()) return Status::DeviceBusy("core is running a kernel");
  if (cold_caches) hierarchy_->InvalidateAll();
  cpu::CoreStats core_before = core_->stats();
  StatsSnapshot before = stats_.Snapshot();
  bool done = false;
  sim::Tick start = eq_.Now();
  NDP_RETURN_NOT_OK(core_->Run(stream, [&done](sim::Tick) { done = true; }));
  sim::Tick end = PumpUntil(&done);
  CpuRunResult r;
  r.duration_ps = end - start;
  r.stats = core_->stats().DeltaSince(core_before);
  r.counters = stats_.Snapshot().DeltaSince(before);
  return r;
}

Result<SystemModel::JafarRunResult> SystemModel::RunJafarSelect(
    const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t col_base = PinColumn(col);
  uint64_t bitmap_base = Allocate((col.size() + 7) / 8 + 64, 4096);
  uint64_t flag_addr = Allocate(64, 64);

  JafarRunResult r;
  r.bitmap_addr = bitmap_base;
  jafar::DeviceStats device_before = device_->stats();
  StatsSnapshot before = stats_.Snapshot();
  sim::Tick start = eq_.Now();

  // Acquire rank ownership through the memory controller (MR3/MPR, §2.2).
  bool owned = false;
  driver_->AcquireOwnership([&owned](sim::Tick) { owned = true; });
  sim::Tick own_at = PumpUntil(&owned);
  r.ownership_ps = own_at - start;

  bool done = false;
  jafar::SelectResult select_result;
  // fig3/fig4 single-query measurement path: the experiment needs exclusive
  // device access, not runtime multiplexing. ndp-lint: runtime-bypass-ok
  NDP_RETURN_NOT_OK(driver_->SelectJafar(
      col_base, lo, hi, bitmap_base, col.size(), flag_addr,
      [&done, &select_result](const jafar::SelectResult& sr) {
        select_result = sr;
        done = true;
      }));
  PumpUntil(&done);
  if (driver_->registers().Read(jafar::Reg::kStatus) ==
      static_cast<uint64_t>(jafar::DeviceStatus::kError)) {
    // Release the rank before reporting: a failed select must not leave the
    // host memory controller locked out.
    bool relinquished = false;
    driver_->ReleaseOwnership([&relinquished](sim::Tick) {
      relinquished = true;
    });
    PumpUntil(&relinquished);
    if (!select_result.status.ok()) return select_result.status;
    return Status::Internal("JAFAR select failed (status register = ERROR)");
  }

  bool released = false;
  driver_->ReleaseOwnership([&released](sim::Tick) { released = true; });
  sim::Tick end = PumpUntil(&released);
  r.ownership_ps += end - select_result.completed_at;

  r.duration_ps = end - start;
  r.matches = select_result.num_output_rows;
  // Per-run stats as deltas against the before-run snapshots.
  r.stats = device_->stats().DeltaSince(device_before);
  r.counters = stats_.Snapshot().DeltaSince(before);
  return r;
}

std::string SystemModel::DumpStats() const {
  std::string out = "---------- simulated system statistics ----------\n";
  out += stats_.DumpText();
  return out;
}

namespace {

/// Device-side failure codes: the ones the pushdown circuit breaker counts.
/// Validation errors (unsupported predicate, bad arguments) say nothing about
/// device health and never trip the breaker.
bool IsDeviceFailure(StatusCode code) {
  return code == StatusCode::kInternal || code == StatusCode::kDeviceBusy ||
         code == StatusCode::kResourceExhausted;
}

/// Consecutive device failures before the breaker opens.
constexpr uint32_t kDegradeThreshold = 3;
/// While degraded, every Nth pushdown call probes the device again.
constexpr uint64_t kProbeInterval = 16;

}  // namespace

db::NdpSelectHook SystemModel::MakePushdownHook() {
  return [this](const db::Column& col,
                const db::Pred& pred) -> Result<db::PositionList> {
    int64_t lo, hi;
    NDP_RETURN_NOT_OK(PredToJafarRange(pred, &lo, &hi));

    // Circuit breaker: after kDegradeThreshold consecutive device failures,
    // stop dispatching to JAFAR (each failed attempt costs watchdog + retry
    // latency) and decline immediately, except for a periodic probe that
    // checks whether the device has recovered.
    if (degraded_mode_ != 0) {
      if (++pushdown_probes_ % kProbeInterval != 0) {
        // kDeviceBusy (not kFailedPrecondition) so the operator layer counts
        // this as a device-health fallback, unlike planner declines.
        return Status::DeviceBusy(
            "JAFAR pushdown degraded: device declined without dispatch");
      }
    }

    Result<JafarRunResult> run = RunJafarSelect(col, lo, hi);
    if (!run.ok()) {
      if (IsDeviceFailure(run.status().code())) {
        ++pushdown_fallbacks_;
        if (++consecutive_failures_ >= kDegradeThreshold) degraded_mode_ = 1;
      }
      return run.status();
    }
    consecutive_failures_ = 0;
    degraded_mode_ = 0;

    // Read the bitmap back (the CPU would stream it through its caches).
    BitVector bm(col.size());
    for (size_t w = 0; w < bm.num_words(); ++w) {
      bm.SetWord(w, dram_->backing_store().Read64(
                        run.ValueOrDie().bitmap_addr + w * 8));
    }
    return db::BitmapToPositions(bm);
  };
}

}  // namespace ndp::core
