// Overload-robust serving ingress: the front door between a client fleet and
// the NdpRuntime, modeled on a DPDK-style packet path (per-core SPSC rings
// over a fixed mbuf pool, drained in bursts).
//
//   * Bounded everywhere: requests live in a fixed pre-allocated slot pool
//     and travel through fixed-capacity rings. Slot exhaustion and a full
//     ring are the first, cheapest shed points — a traffic spike hits a hard
//     boundary at the door instead of growing a queue somewhere deep.
//   * Deadline propagation: every request carries an absolute deadline that
//     follows it through admission, the runtime's chunk queues, and retire;
//     expired work is cancelled at the next chunk boundary and is never
//     silently completed late.
//   * Retry budgets: a per-tenant token bucket caps the retry amplification
//     of the fault path — a device that hangs under load makes its tenant
//     shed, not spin.
//   * Overload governor: a three-state machine (healthy -> shed-low-priority
//     -> brownout) driven online from live stats-registry reads of slot
//     occupancy. Shedding drops batch-priority tenants at the door; brownout
//     additionally bounds the NDP backlog and routes the overflow of
//     interactive selects to the bit-identical CPU scan fallback, so goodput
//     degrades smoothly past saturation instead of cliffing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dimm_array.h"
#include "core/runtime.h"
#include "db/column.h"
#include "sim/spsc.h"
#include "util/stats_registry.h"

namespace ndp::core {

/// Ingress policy knobs. Overridable from the environment via NDP_INGRESS_*
/// (FromEnv; strict parses, a malformed value fails loudly).
struct IngressConfig {
  // -- Bounded buffering ----------------------------------------------------
  uint64_t rings = 4;            ///< per-core SPSC request rings
  uint64_t ring_capacity = 256;  ///< entries per ring (power of two)
  uint64_t slots = 1024;         ///< pre-allocated request slots (mbuf pool)
  uint64_t burst = 32;           ///< max requests drained per ring per pump
  uint64_t poll_bus_cycles = 800;  ///< pump cadence, DDR3 bus cycles

  // -- Retry budget ---------------------------------------------------------
  double retry_tokens = 8.0;         ///< per-tenant bucket capacity
  double retry_refill_per_ms = 4.0;  ///< tokens regained per simulated ms

  // -- Overload governor ----------------------------------------------------
  bool governor_enabled = true;
  double shed_threshold = 0.5;      ///< occupancy EWMA: healthy -> shed
  double brownout_threshold = 0.8;  ///< occupancy EWMA: shed -> brownout
  double governor_hysteresis = 0.15;  ///< downward transitions need this gap
  uint64_t governor_poll_bus_cycles = 4'000;  ///< tick cadence
  double governor_alpha = 0.3;  ///< occupancy EWMA smoothing
  /// In brownout, at most this many requests may be in flight in the
  /// NdpRuntime; the overflow routes to the CPU fallback. Bounding the NDP
  /// backlog is what keeps admitted-request latency inside the deadline.
  uint64_t brownout_ndp_inflight = 64;
  /// Cost model of the CPU fallback scan: bus cycles per row, serialized
  /// through a single host core.
  uint64_t cpu_scan_bus_cycles_per_row = 4;

  /// Reads NDP_INGRESS_* overrides onto the defaults (strict parse).
  static Result<IngressConfig> FromEnv();
  Status Validate() const;
};

/// One serving tenant: its QoS class, open-loop arrival weight (ClientFleet),
/// optional closed-loop window, and per-request deadline (the SLO).
struct TenantSpec {
  std::string name;
  JobPriority priority = JobPriority::kBatch;
  double weight = 1.0;
  /// 0: open-loop (Poisson arrivals at weight-proportional rate). >0: closed
  /// loop with this many outstanding requests and exponential think time.
  uint32_t closed_loop_windows = 0;
  /// Relative deadline applied to every request, ps after arrival.
  sim::Tick deadline_ps = 500'000'000;
};

enum class OverloadState : uint8_t {
  kHealthy = 0,
  kShedLowPriority = 1,
  kBrownout = 2,
};
const char* OverloadStateToString(OverloadState s);

/// Terminal outcome of one serving request.
enum class ServeOutcome : uint8_t {
  kOk = 0,             ///< completed on the NDP path before the deadline
  kOkCpuFallback,      ///< completed on the CPU fallback before the deadline
  kShedRingFull,       ///< rejected at the door: ring at capacity
  kShedSlotsExhausted, ///< rejected at the door: slot pool empty
  kShedLowPriority,    ///< rejected by the governor: batch tenant under shed
  kShedRetryBudget,    ///< failed and the tenant's retry bucket was empty
  kExpiredAtAdmission, ///< deadline already passed when admission looked
  kDeadlineExceeded,   ///< cancelled at a chunk boundary past the deadline
  kFailed,             ///< NDP job failed terminally (no retry possible)
};
const char* ServeOutcomeToString(ServeOutcome o);

/// True for outcomes that count toward goodput (completed, on time).
inline bool IsGoodput(ServeOutcome o) {
  return o == ServeOutcome::kOk || o == ServeOutcome::kOkCpuFallback;
}

struct ServingRequest {
  uint32_t tenant = 0;
  uint32_t table = 0;  ///< from ServingIngress::AddTable
  int64_t lo = 0, hi = 0;
  sim::Tick deadline_ps = 0;  ///< absolute simulated time; 0 = none
};

struct ServingResult {
  ServeOutcome outcome = ServeOutcome::kFailed;
  uint64_t matches = 0;
  sim::Tick accepted_ps = 0;   ///< arrival at the ingress
  sim::Tick completed_ps = 0;  ///< terminal outcome time
};
using ServeCallback = std::function<void(const ServingResult&)>;

/// Registered under "array.ingress.".
struct IngressCounters {
  uint64_t accepted = 0;             ///< made it past the door into a ring
  uint64_t bursts = 0;               ///< non-empty pump drains
  uint64_t admitted_interactive = 0; ///< NDP admissions at kInteractive
  uint64_t admitted_batch = 0;       ///< NDP admissions at kBatch
  uint64_t completed_ndp = 0;
  uint64_t completed_cpu = 0;
  uint64_t shed_ring_full = 0;
  uint64_t shed_slots_exhausted = 0;
  uint64_t shed_low_priority = 0;
  uint64_t shed_retry_budget = 0;
  uint64_t expired_at_admission = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;              ///< budgeted resubmissions after a fault
  uint64_t governor_transitions = 0;
};

/// \brief The serving front door: rings -> slot pool -> burst admission into
/// the NdpRuntime, with the governor deciding who gets in and where.
///
/// Single-threaded within the host partition of the simulation (every ring
/// has one producer — the client fleet — and one consumer — the pump), so
/// the SPSC contract holds by construction. Stats register in the array's
/// registry; keep the ingress alive for as long as that registry is read.
class ServingIngress {
 public:
  ServingIngress(NdpRuntime* runtime, DimmArray* array, IngressConfig config,
                 std::vector<TenantSpec> tenants);
  ~ServingIngress();
  NDP_DISALLOW_COPY_AND_ASSIGN(ServingIngress);

  /// Registers a servable column (host copy + its placement). The host copy
  /// is what the CPU fallback scans; it must stay alive and unmodified.
  uint32_t AddTable(const db::Column* col, const PlacedColumn* placed);

  /// Producer side, called at request arrival. Returns true when the request
  /// was accepted into `ring`; on a shed the callback still fires
  /// synchronously with the shed outcome, so every request gets exactly one
  /// terminal ServingResult either way.
  bool Enqueue(uint32_t ring, const ServingRequest& req, ServeCallback done);

  /// Starts the pump (and the governor, when enabled).
  void Start();
  /// Stops accepting; already-accepted requests still drain to completion.
  void Stop();
  /// Pumps the event queue until every accepted request reached its terminal
  /// outcome (call after Stop).
  Status Drain();

  OverloadState state() const { return state_; }
  double occupancy_ewma() const { return occupancy_ewma_; }
  uint64_t slots_in_use() const { return config_.slots - free_.size(); }
  const IngressConfig& config() const { return config_; }
  const IngressCounters& counters() const { return counters_; }
  size_t num_tenants() const { return tenants_.size(); }
  const TenantSpec& tenant(uint32_t t) const { return tenants_[t]; }
  size_t num_tables() const { return tables_.size(); }
  /// Retry tokens currently in tenant `t`'s bucket (monotone refill applied).
  double retry_tokens(uint32_t t) const;

 private:
  struct Slot {
    ServingRequest req;
    ServeCallback done;
    sim::Tick accepted_ps = 0;
    uint64_t cpu_matches = 0;  ///< fallback result, computed at submission
    uint32_t retries = 0;
  };
  struct Table {
    const db::Column* col = nullptr;
    const PlacedColumn* placed = nullptr;
  };
  struct TokenBucket {
    double tokens = 0.0;
    sim::Tick last_refill_ps = 0;
  };

  void Pump();
  void SchedulePump();
  void GovernorTick();
  void ScheduleGovernor();
  /// Routing decision for one drained slot: NDP burst, CPU fallback, or an
  /// immediate terminal outcome (expired / shed).
  void Admit(uint32_t slot, std::vector<uint32_t>* ndp_batch);
  void SubmitNdpBurst(const std::vector<uint32_t>& slot_ids);
  void SubmitNdpOne(uint32_t slot);
  void SubmitCpu(uint32_t slot);
  void OnNdpDone(uint32_t slot, const JobResult& r);
  SubmitOptions OptionsFor(uint32_t slot);
  bool TakeRetryToken(uint32_t tenant);
  void Finish(uint32_t slot, ServeOutcome outcome, uint64_t matches);
  /// Terminal outcome for a request that never got (or already released) a
  /// slot: counts it and fires the callback synchronously.
  void FinishShed(const ServeCallback& done, ServeOutcome outcome);
  void BumpOutcome(ServeOutcome outcome);
  bool HasBacklog() const;

  NdpRuntime* runtime_;
  DimmArray* array_;
  IngressConfig config_;
  sim::EventQueue& eq_;

  /// Fixed mbuf-style request pool; never grows after construction.
  std::vector<Slot> pool_;       // ndp: bounded-by(NDP_INGRESS_SLOTS)
  std::vector<uint32_t> free_;   // ndp: bounded-by(NDP_INGRESS_SLOTS)
  /// Fixed ring set; each ring is capacity-bounded via TryPush.
  // ndp: bounded-by(NDP_INGRESS_RINGS)
  std::vector<std::unique_ptr<sim::SpscQueue<uint32_t>>> rings_;
  // Setup-time metadata, not on the per-request admission path.
  std::vector<Table> tables_;         // ndp-lint: bounded-queue-ok registered once at setup, before Start
  std::vector<TenantSpec> tenants_;   // ndp-lint: bounded-queue-ok fixed tenant set from construction
  std::vector<TokenBucket> buckets_;  // ndp-lint: bounded-queue-ok one bucket per tenant, sized at construction

  bool running_ = false;
  bool pump_scheduled_ = false;
  bool governor_scheduled_ = false;
  uint32_t next_ring_ = 0;  ///< round-robin drain cursor
  uint64_t ndp_inflight_ = 0;
  sim::Tick cpu_busy_until_ps_ = 0;  ///< single-server CPU fallback model
  OverloadState state_ = OverloadState::kHealthy;
  double occupancy_ewma_ = 0.0;
  bool has_occupancy_ = false;
  std::string occupancy_path_;  ///< registry path the governor reads

  IngressCounters counters_;
};

}  // namespace ndp::core
