// Figure 4 methodology: run a query's recorded memory trace through the
// Xeon-class memory system, sample the memory-controller busy counters, and
// apply the paper's pessimistic idle-period estimator:
//
//   MC_empty = total_cycles - RC_busy - WC_busy
//   mean_idle_period = MC_empty / (#reads + #writes)
//
// Also reports the exact both-queues-empty idle statistics the simulator can
// observe directly, quantifying how pessimistic the estimator is.
#pragma once

#include <string>
#include <vector>

#include "core/system.h"
#include "db/trace.h"

namespace ndp::core {

/// The paper's §3.3 pessimistic estimator for one controller window:
///   MC_empty = total_cycles - busy_cycles
///   mean_idle_period = MC_empty / max(1, requests)
/// A request-free window counts as one idle period spanning the whole window.
/// Shared between the post-hoc IdlePeriodProfiler (Figure 4) and the
/// runtime's online per-window EWMA (runtime.h LeaseController).
double PessimisticIdlePeriodCycles(uint64_t total_cycles, uint64_t busy_cycles,
                                   uint64_t requests);

/// Counters of one memory controller over the profiling window (the paper
/// samples each IMC separately and reports per-controller idle periods).
struct ChannelProfile {
  uint64_t rc_busy_cycles = 0;
  uint64_t wc_busy_cycles = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
};

/// \brief Per-query idle-period profile.
struct IdleProfile {
  std::string label;
  uint64_t total_bus_cycles = 0;
  uint64_t rc_busy_cycles = 0;   ///< read-queue busy, summed over channels
  uint64_t wc_busy_cycles = 0;   ///< write-queue busy, summed over channels
  uint64_t reads = 0;
  uint64_t writes = 0;
  std::vector<ChannelProfile> channels;

  /// Paper estimator (lower bound): mean idle period in bus cycles, computed
  /// per memory controller and averaged over controllers that saw traffic —
  /// matching the paper's per-IMC sampling.
  double EstimatedMeanIdleCycles() const;
  /// Exact measurement from the simulator's idle histogram (windowed to the
  /// profiled replay via histogram sum/count snapshot deltas).
  double MeasuredMeanIdleCycles() const { return measured_mean_idle_cycles; }
  double measured_mean_idle_cycles = 0;

  /// Full-registry delta over the profiled window (caches, core, JAFAR too).
  StatsSnapshot counters;

  /// §3.3 corollary: data JAFAR could process per idle period (bytes), at
  /// one 32-byte block per 4 bus cycles... the paper uses 32 B blocks; our
  /// DDR3 model moves 64 B per 4-cycle burst, so we report the paper's
  /// accounting for comparability.
  double BytesPerIdlePeriodPaperAccounting() const {
    return EstimatedMeanIdleCycles() / 4.0 * 32.0;
  }
};

/// \brief Runs traces through a system and produces IdleProfiles.
class IdlePeriodProfiler {
 public:
  explicit IdlePeriodProfiler(SystemModel* system) : system_(system) {}

  /// Replays `events` (from a db::TraceRecorder) and samples the controller
  /// counters over the replay window. `warm_runs` replays the trace that many
  /// times first without counting, so hot columns and intermediates are
  /// cache-resident — the steady-state condition of the paper's long-running
  /// server (the profiled MonetDB had its working set paged in and warm).
  Result<IdleProfile> Profile(const std::string& label,
                              const std::vector<cpu::TraceEvent>& events,
                              uint32_t warm_runs = 0);

 private:
  SystemModel* system_;
};

}  // namespace ndp::core
