// SystemModel: one fully-wired simulated machine — event queue, DRAM system,
// cache hierarchy, out-of-order core, and a JAFAR unit with its driver — plus
// timed entry points for the experiments: CPU selects (branching/predicated),
// JAFAR selects (with MR3 ownership hand-off), and database-trace replay.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/platform.h"
#include "cpu/core.h"
#include "cpu/hierarchy.h"
#include "cpu/kernels.h"
#include "db/operators.h"
#include "dram/dram_system.h"
#include "fault/injector.h"
#include "jafar/driver.h"
#include "util/stats_registry.h"

namespace ndp::core {

/// \brief A complete simulated system instantiated from a PlatformConfig.
class SystemModel {
 public:
  explicit SystemModel(PlatformConfig config);
  NDP_DISALLOW_COPY_AND_ASSIGN(SystemModel);

  const PlatformConfig& config() const { return config_; }
  sim::EventQueue& eq() { return eq_; }
  dram::DramSystem& dram() { return *dram_; }
  cpu::Core& cpu() { return *core_; }
  cpu::CacheHierarchy& caches() { return *hierarchy_; }
  jafar::Device& jafar() { return *device_; }
  jafar::Driver& driver() { return *driver_; }

  /// Bump-allocates physical memory in the JAFAR-equipped rank (channel 0,
  /// rank 0). Page-aligned by default.
  uint64_t Allocate(uint64_t bytes, uint64_t align = 4096);

  /// Ensures `col`'s values are resident in the backing store; returns the
  /// physical base address (stable per column; "pinned", §4 Memory
  /// Management).
  uint64_t PinColumn(const db::Column& col);

  struct CpuRunResult {
    sim::Tick duration_ps = 0;
    cpu::CoreStats stats;        ///< per-run core stats (snapshot delta)
    uint64_t matches = 0;
    /// Full-registry delta over the timed region: every counter in the
    /// system (caches, controllers, JAFAR) attributable to this run.
    StatsSnapshot counters;
  };

  /// Times the CPU select loop over `col` (lo <= v <= hi), with or without
  /// predication (§3.2). Caches can be optionally invalidated first so every
  /// run starts cold, as a fresh query on a large dataset would.
  Result<CpuRunResult> RunCpuSelect(const db::Column& col, int64_t lo,
                                    int64_t hi, db::SelectMode mode,
                                    bool cold_caches = true);

  /// Times a CPU aggregate (sum) scan over `col`.
  Result<CpuRunResult> RunCpuAggregate(const db::Column& col,
                                       bool cold_caches = true);

  /// Times a CPU projection gather of `col` at `positions`.
  Result<CpuRunResult> RunCpuProject(const db::Column& col,
                                     const db::PositionList& positions,
                                     bool cold_caches = true);

  /// Replays a recorded database trace through the core + memory system.
  Result<CpuRunResult> ReplayTrace(const std::vector<cpu::TraceEvent>& events,
                                   bool cold_caches = true);

  /// Times an arbitrary µop stream on the core (building block for custom
  /// kernels in benches and tests).
  Result<CpuRunResult> RunStream(cpu::UopStream* stream,
                                 bool cold_caches = true);

  struct JafarRunResult {
    sim::Tick duration_ps = 0;       ///< end-to-end, including ownership
    sim::Tick ownership_ps = 0;      ///< MR3 hand-off round trip
    uint64_t matches = 0;
    uint64_t bitmap_addr = 0;
    jafar::DeviceStats stats;        ///< device counters for this run (delta)
    /// Full-registry delta over the timed region (see CpuRunResult).
    StatsSnapshot counters;
  };

  /// Times a full JAFAR select: acquire rank ownership, run the paged
  /// Figure-2 API over the pinned column, release ownership. The CPU
  /// spin-waits (no contention), as in the Figure 3 experiment.
  Result<JafarRunResult> RunJafarSelect(const db::Column& col, int64_t lo,
                                        int64_t hi);

  /// Builds an NDP pushdown hook for db::QueryContext::ndp_select that
  /// executes selects on this system's JAFAR unit. Only kBetween/kEq/kLe/kGe/
  /// kLt/kGt predicates are pushable; others return an error (CPU fallback).
  ///
  /// Graceful degradation: device failures that survive the driver's retry
  /// budget bump `pushdown_fallbacks` and return an error so the operator
  /// layer transparently re-executes on the CPU scalar path (bit-identical
  /// results). After `kDegradeThreshold` consecutive failures the hook trips
  /// into degraded mode (gauge `system.core.degraded_mode` = 1) and declines
  /// immediately, probing the device again every `kProbeInterval`-th call.
  db::NdpSelectHook MakePushdownHook();

  /// True while the pushdown hook is declining JAFAR (circuit breaker open).
  bool degraded_mode() const { return degraded_mode_ != 0; }

  /// Seeded fault source attached to the JAFAR device, or null when the
  /// configured FaultPlan (PlatformConfig + NDP_FAULT_* env) is inactive or
  /// fault injection is compiled out.
  fault::FaultInjector* fault_injector() { return injector_.get(); }

  /// gem5-style statistics dump: a sorted walk of the whole registry as
  /// "path value" lines (core, caches, memory controllers, JAFAR device).
  std::string DumpStats() const;

  /// The hierarchical registry every component mounts its counters into
  /// (paths under "system."). Snapshot it around a region of interest and
  /// diff with StatsSnapshot::DeltaSince for attribution.
  const StatsRegistry& stats() const { return stats_; }
  StatsRegistry& stats() { return stats_; }

 private:
  /// Pumps the event queue until `done` is set; returns the tick at finish.
  sim::Tick PumpUntil(const bool* done);

  PlatformConfig config_;
  sim::EventQueue eq_;
  /// Declared before the components so it outlives them (components register
  /// pointers into it; nothing reads the registry during destruction).
  StatsRegistry stats_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<cpu::CacheHierarchy> hierarchy_;
  std::unique_ptr<cpu::Core> core_;
  jafar::DeviceConfig device_config_;
  /// Declared before device_: the device holds a raw pointer to the injector.
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<jafar::Device> device_;
  std::unique_ptr<jafar::Driver> driver_;

  // Pushdown health (registered under "system.core").
  uint64_t pushdown_fallbacks_ = 0;   ///< device failures rerouted to the CPU
  uint64_t degraded_mode_ = 0;        ///< gauge: 1 while the breaker is open
  uint64_t pushdown_probes_ = 0;      ///< degraded-mode trial dispatches
  uint32_t consecutive_failures_ = 0;

  uint64_t next_alloc_ = 0;
  std::unordered_map<const db::Column*, uint64_t> pinned_;
};

}  // namespace ndp::core
