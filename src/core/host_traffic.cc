#include "core/host_traffic.h"

#include <cmath>

#include "util/logging.h"

namespace ndp::core {

HostTrafficGen::HostTrafficGen(sim::EventQueue* eq,
                               dram::MemoryController* controller,
                               HostTrafficConfig config,
                               const StatsScope& stats)
    : eq_(eq),
      controller_(controller),
      config_(config),
      rng_(config.seed, /*stream=*/0x9e3779b97f4a7c15ULL) {
  NDP_CHECK(config_.reqs_per_us > 0.0);
  if (stats.active()) {
    stats.Counter("issued", &issued_);
    stats.Counter("completed", &completed_);
    stats.Counter("backpressure_retries", &retries_);
    stats.Histogram("latency_ps", &latency_);
  }
}

void HostTrafficGen::AddRegion(uint64_t base, uint64_t bytes) {
  NDP_CHECK(bytes >= 64);
  regions_.push_back(Region{base & ~uint64_t{63}, bytes / 64});
  total_lines_ += bytes / 64;
}

void HostTrafficGen::Start() {
  NDP_CHECK(!regions_.empty());
  running_ = true;
  ScheduleNext();
}

void HostTrafficGen::Stop() { running_ = false; }

void HostTrafficGen::ScheduleNext() {
  if (!running_) return;
  // Exponential inter-arrival with mean 1e6 / reqs_per_us picoseconds.
  double u = rng_.NextDouble();
  double gap_ps = -std::log(1.0 - u) * (1.0e6 / config_.reqs_per_us);
  eq_->ScheduleAfter(static_cast<sim::Tick>(gap_ps) + 1, [this] { Issue(); });
}

void HostTrafficGen::Issue() {
  if (!running_) return;
  // Pick a line uniformly over the pooled regions (size-weighted).
  NDP_DCHECK(total_lines_ < (uint64_t{1} << 32));
  uint64_t line = rng_.NextBounded(static_cast<uint32_t>(total_lines_));
  uint64_t addr = 0;
  for (const Region& r : regions_) {
    if (line < r.lines) {
      addr = r.base + line * 64;
      break;
    }
    line -= r.lines;
  }
  bool is_write = rng_.NextBool(config_.write_fraction);
  ++issued_;
  TryEnqueue(addr, is_write, eq_->Now());
  ScheduleNext();
}

void HostTrafficGen::TryEnqueue(uint64_t addr, bool is_write,
                                sim::Tick first_attempt_ps) {
  dram::Request req;
  req.addr = addr;
  req.is_write = is_write;
  req.requester = dram::RequesterId::kCpu;
  req.on_complete = [this, first_attempt_ps](sim::Tick done) {
    ++completed_;
    latency_.Add(static_cast<double>(done - first_attempt_ps));
  };
  if (!controller_->Enqueue(req).ok()) {
    // Queue full: hold the request in the "MSHR" and retry. Latency keeps
    // accruing from the first attempt — backpressure is stall the CPU sees.
    ++retries_;
    eq_->ScheduleAfter(config_.retry_backoff_ps,
                       [this, addr, is_write, first_attempt_ps] {
                         TryEnqueue(addr, is_write, first_attempt_ps);
                       });
  }
}

}  // namespace ndp::core
