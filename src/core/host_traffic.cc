#include "core/host_traffic.h"

#include <cmath>

#include "util/logging.h"

namespace ndp::core {

HostTrafficGen::HostTrafficGen(sim::EventQueue* eq,
                               dram::MemoryController* controller,
                               HostTrafficConfig config,
                               const StatsScope& stats)
    : eq_(eq),
      controller_(controller),
      config_(config),
      rng_(config.seed, /*stream=*/0x9e3779b97f4a7c15ULL) {
  NDP_CHECK(config_.reqs_per_us > 0.0);
  if (stats.active()) {
    stats.Counter("issued", &issued_);
    stats.Counter("completed", &completed_);
    stats.Counter("backpressure_retries", &retries_);
    stats.Histogram("latency_ps", &latency_);
  }
}

void HostTrafficGen::AddRegion(uint64_t base, uint64_t bytes) {
  NDP_CHECK(bytes >= 64);
  regions_.push_back(Region{base & ~uint64_t{63}, bytes / 64});
  total_lines_ += bytes / 64;
}

void HostTrafficGen::Start() {
  NDP_CHECK(!regions_.empty());
  running_ = true;
  ScheduleNext();
}

void HostTrafficGen::Stop() { running_ = false; }

void HostTrafficGen::ScheduleNext() {
  if (!running_) return;
  // Exponential inter-arrival with mean 1e6 / reqs_per_us picoseconds.
  double u = rng_.NextDouble();
  double gap_ps = -std::log(1.0 - u) * (1.0e6 / config_.reqs_per_us);
  eq_->ScheduleAfter(static_cast<sim::Tick>(gap_ps) + 1, [this] { Issue(); });
}

void HostTrafficGen::Issue() {
  if (!running_) return;
  // Pick a line uniformly over the pooled regions (size-weighted).
  NDP_DCHECK(total_lines_ < (uint64_t{1} << 32));
  uint64_t line = rng_.NextBounded(static_cast<uint32_t>(total_lines_));
  uint64_t addr = 0;
  for (const Region& r : regions_) {
    if (line < r.lines) {
      addr = r.base + line * 64;
      break;
    }
    line -= r.lines;
  }
  bool is_write = rng_.NextBool(config_.write_fraction);
  ++issued_;
  TryEnqueue(addr, is_write, eq_->Now());
  ScheduleNext();
}

void HostTrafficGen::TryEnqueue(uint64_t addr, bool is_write,
                                sim::Tick first_attempt_ps) {
  dram::Request req;
  req.addr = addr;
  req.is_write = is_write;
  req.requester = dram::RequesterId::kCpu;
  req.on_complete = [this, first_attempt_ps](sim::Tick done) {
    ++completed_;
    latency_.Add(static_cast<double>(done - first_attempt_ps));
  };
  if (!controller_->Enqueue(req).ok()) {
    // Queue full: hold the request in the "MSHR" and retry. Latency keeps
    // accruing from the first attempt — backpressure is stall the CPU sees.
    ++retries_;
    eq_->ScheduleAfter(config_.retry_backoff_ps,
                       [this, addr, is_write, first_attempt_ps] {
                         TryEnqueue(addr, is_write, first_attempt_ps);
                       });
  }
}

// -- ClientFleet --------------------------------------------------------------

ClientFleet::ClientFleet(sim::EventQueue* eq, ServingIngress* ingress,
                         FleetConfig config, const StatsScope& stats)
    : eq_(eq), ingress_(ingress), config_(config) {
  NDP_CHECK(config_.reqs_per_us > 0.0 && config_.think_ps > 0);
  NDP_CHECK(config_.span > 0 &&
            config_.value_hi - config_.value_lo >= config_.span);
  size_t n = ingress_->num_tenants();
  NDP_CHECK(n > 0);
  rngs_.reserve(n);
  stats_.resize(n);
  for (uint32_t t = 0; t < n; ++t) {
    // One PCG32 stream per tenant: tenant t's request sequence is invariant
    // to every other tenant's loop type and to the overload response.
    rngs_.emplace_back(config_.seed, /*stream=*/2 * uint64_t{t} + 1);
    const TenantSpec& spec = ingress_->tenant(t);
    if (spec.closed_loop_windows == 0) open_weight_total_ += spec.weight;
    if (stats.active()) {
      StatsScope ts = stats.Sub("tenant" + std::to_string(t));
      ts.Counter("issued", &stats_[t].issued);
      ts.Counter("goodput", &stats_[t].goodput);
      ts.Counter("shed", &stats_[t].shed);
      ts.Counter("late", &stats_[t].late);
      ts.Counter("failed", &stats_[t].failed);
      ts.Counter("mismatches", &stats_[t].mismatches);
      ts.Histogram("latency_ps", &stats_[t].latency);
    }
  }
}

void ClientFleet::Start() {
  running_ = true;
  for (uint32_t t = 0; t < ingress_->num_tenants(); ++t) {
    const TenantSpec& spec = ingress_->tenant(t);
    if (spec.closed_loop_windows == 0) {
      ScheduleOpenArrival(t);
    } else {
      for (uint32_t w = 0; w < spec.closed_loop_windows; ++w) IssueOne(t);
    }
  }
}

void ClientFleet::Stop() { running_ = false; }

uint64_t ClientFleet::issued() const {
  uint64_t n = 0;
  for (const TenantStats& s : stats_) n += s.issued;
  return n;
}

uint64_t ClientFleet::goodput() const {
  uint64_t n = 0;
  for (const TenantStats& s : stats_) n += s.goodput;
  return n;
}

uint64_t ClientFleet::shed() const {
  uint64_t n = 0;
  for (const TenantStats& s : stats_) n += s.shed;
  return n;
}

uint64_t ClientFleet::mismatches() const {
  uint64_t n = 0;
  for (const TenantStats& s : stats_) n += s.mismatches;
  return n;
}

void ClientFleet::Mix(uint64_t* digest, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *digest ^= (v >> (8 * i)) & 0xff;
    *digest *= 1099511628211ULL;  // FNV-1a prime
  }
}

void ClientFleet::ScheduleOpenArrival(uint32_t tenant) {
  if (!running_) return;
  const TenantSpec& spec = ingress_->tenant(tenant);
  double rate = config_.reqs_per_us * spec.weight / open_weight_total_;
  double u = rngs_[tenant].NextDouble();
  double gap_ps = -std::log(1.0 - u) * (1.0e6 / rate);
  eq_->ScheduleAfter(static_cast<sim::Tick>(gap_ps) + 1, [this, tenant] {
    if (!running_) return;
    IssueOne(tenant);
    ScheduleOpenArrival(tenant);
  });
}

void ClientFleet::ScheduleThink(uint32_t tenant) {
  if (!running_) return;
  double u = rngs_[tenant].NextDouble();
  double gap_ps = -std::log(1.0 - u) * static_cast<double>(config_.think_ps);
  eq_->ScheduleAfter(static_cast<sim::Tick>(gap_ps) + 1, [this, tenant] {
    if (!running_) return;
    IssueOne(tenant);
  });
}

void ClientFleet::IssueOne(uint32_t tenant) {
  Rng& rng = rngs_[tenant];
  const TenantSpec& spec = ingress_->tenant(tenant);
  ServingRequest req;
  req.tenant = tenant;
  req.table = rng.NextBounded(static_cast<uint32_t>(ingress_->num_tables()));
  req.lo = config_.value_lo +
           rng.NextInRange(0, config_.value_hi - config_.value_lo -
                                  config_.span);
  req.hi = req.lo + config_.span - 1;
  req.deadline_ps = spec.deadline_ps == 0 || !config_.propagate_deadlines
                        ? 0
                        : eq_->Now() + spec.deadline_ps;
  uint32_t ring =
      static_cast<uint32_t>(issue_seq_++ % ingress_->config().rings);
  ++stats_[tenant].issued;
  Mix(&issue_digest_, tenant);
  Mix(&issue_digest_, req.table);
  Mix(&issue_digest_, static_cast<uint64_t>(req.lo));
  Mix(&issue_digest_, static_cast<uint64_t>(eq_->Now()));
  ServingRequest oracle_req = req;  // callback outlives `req`
  ingress_->Enqueue(ring, req,
                    [this, tenant, oracle_req](const ServingResult& res) {
                      if (oracle_ && IsGoodput(res.outcome) &&
                          oracle_(oracle_req) != res.matches) {
                        ++stats_[tenant].mismatches;
                      }
                      OnDone(tenant, res);
                    });
}

void ClientFleet::OnDone(uint32_t tenant, const ServingResult& res) {
  TenantStats& ts = stats_[tenant];
  Mix(&outcome_digest_, static_cast<uint64_t>(res.outcome));
  Mix(&outcome_digest_, static_cast<uint64_t>(res.completed_ps));
  switch (res.outcome) {
    case ServeOutcome::kOk:
    case ServeOutcome::kOkCpuFallback: {
      // Client-side SLO judgment: with deadline propagation off (the naive
      // control) the ingress completes everything eventually, but a
      // completion past the tenant SLO is still not goodput.
      const sim::Tick latency = res.completed_ps - res.accepted_ps;
      const sim::Tick slo = ingress_->tenant(tenant).deadline_ps;
      if (slo != 0 && latency > slo) {
        ++ts.late;
        break;
      }
      ++ts.goodput;
      ts.latency.Add(static_cast<double>(latency));
      break;
    }
    case ServeOutcome::kShedRingFull:
    case ServeOutcome::kShedSlotsExhausted:
    case ServeOutcome::kShedLowPriority:
    case ServeOutcome::kShedRetryBudget:
      ++ts.shed;
      break;
    case ServeOutcome::kExpiredAtAdmission:
    case ServeOutcome::kDeadlineExceeded:
      ++ts.late;
      break;
    case ServeOutcome::kFailed:
      ++ts.failed;
      break;
  }
  // Closed-loop tenants refill their window after a think pause; the pause
  // (not recursion) is what breaks the synchronous-shed cycle.
  if (ingress_->tenant(tenant).closed_loop_windows > 0) ScheduleThink(tenant);
}

}  // namespace ndp::core
