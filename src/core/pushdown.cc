#include "core/pushdown.h"

namespace ndp::core {

double CostModel::CpuSelectPs(const PlatformConfig& p, uint64_t rows,
                              double selectivity) {
  double cycle_ps = static_cast<double>(p.core.clock.period_ps());
  // Pipeline cost: ~7 µops/row at the issue width, plus bookkeeping for
  // qualifying rows and the mispredict tax (2p(1-p) of the penalty).
  double uops_per_row = 7.0 + 3.0 * selectivity;
  double pipeline = uops_per_row / p.core.issue_width +
                    2.0 * selectivity * (1.0 - selectivity) *
                        p.core.branch.mispredict_penalty_cycles;
  // Memory: one line fill per 8 rows, overlapped up to the L1 MSHR count but
  // ultimately bounded by one burst per tCCD on the channel.
  double line_fill_ps = static_cast<double>(p.dram_timing.tccd) *
                        static_cast<double>(p.dram_timing.tck_ps);
  double mem_per_row = line_fill_ps / 8.0;
  // Without prefetching the demand-miss latency is only partially hidden;
  // charge a latency term divided by the achievable MLP.
  double miss_ps = static_cast<double>(p.dram_timing.trcd + p.dram_timing.cl +
                                       p.dram_timing.tburst) *
                   static_cast<double>(p.dram_timing.tck_ps) / 4.0;
  bool prefetching = false;
  for (const auto& c : p.caches) prefetching |= c.prefetch_degree > 0;
  double latency_per_row = prefetching ? 0.0 : miss_ps / 8.0;
  return static_cast<double>(rows) *
         (pipeline * cycle_ps + std::max(mem_per_row, latency_per_row));
}

double CostModel::JafarSelectPs(const PlatformConfig& p, uint64_t rows) {
  double bus_ps = static_cast<double>(p.dram_timing.tck_ps);
  // One 8-word burst per tCCD, plus ~1/128 activations per burst and the
  // bitmap write-back (1 burst per 512 rows).
  double bursts = static_cast<double>(rows) / 8.0;
  double read_ps = bursts * p.dram_timing.tccd * bus_ps;
  double act_ps = bursts / 128.0 *
                  static_cast<double>(p.dram_timing.trcd + p.dram_timing.trp) *
                  bus_ps;
  double writeback_ps = static_cast<double>(rows) / 512.0 *
                        p.dram_timing.tccd * bus_ps;
  // Ownership hand-off + per-page invocation overhead.
  double ownership_ps = 2.0 * (p.dram_timing.tmrd + 8.0) * bus_ps;
  double pages = static_cast<double>(rows) * 8.0 / 4096.0;
  double invocation_ps = pages * 64.0 * bus_ps / 2.0;
  if (p.device_gen == jafar::DeviceGeneration::kV2BankLevel) {
    // Bank-level filtering: the per-bank comparator is an area-constrained
    // slice running at roughly half the IO burst rate, but banks_per_rank of
    // them stream concurrently and their reads never touch the data bus; in
    // exchange every row segment pays ARM/ACT/DISARM plus an accumulator
    // drain on the shared result bus (one cycle per 64 match bits), and the
    // device batches one row per bank into each invocation.
    double banks = static_cast<double>(p.dram_org.banks_per_rank);
    double row_bytes = static_cast<double>(p.dram_org.row_size_bytes);
    double filter_read_ps = bursts * 2.0 * p.dram_timing.tccd * bus_ps / banks;
    double segments = static_cast<double>(rows) * 8.0 / row_bytes;
    double drain_cycles = row_bytes / 8.0 / 64.0;
    double segment_ps = segments * (2.0 + drain_cycles) * bus_ps;
    double jobs = static_cast<double>(rows) * 8.0 / (banks * row_bytes);
    double invocation_v2_ps = jobs * 64.0 * bus_ps / 2.0;
    return filter_read_ps + act_ps + segment_ps + writeback_ps +
           ownership_ps + invocation_v2_ps;
  }
  return read_ps + act_ps + writeback_ps + ownership_ps + invocation_ps;
}

double CostModel::CpuSemiJoinPs(const PlatformConfig& p, uint64_t build_rows,
                                uint64_t probe_rows) {
  double cycle_ps = static_cast<double>(p.core.clock.period_ps());
  // Hash build and probe are pointer-chasing: ~12 (build) / ~10 (probe) µops
  // per row plus one mostly-missing random access into the table; the demand
  // miss is only partially overlapped (MLP ~4).
  double miss_ps = static_cast<double>(p.dram_timing.trcd + p.dram_timing.cl +
                                       p.dram_timing.tburst) *
                   static_cast<double>(p.dram_timing.tck_ps) / 4.0;
  double stream_ps = static_cast<double>(p.dram_timing.tccd) *
                     static_cast<double>(p.dram_timing.tck_ps) / 8.0;
  double per_build = 12.0 / p.core.issue_width * cycle_ps + miss_ps + stream_ps;
  double per_probe = 10.0 / p.core.issue_width * cycle_ps + miss_ps + stream_ps;
  return static_cast<double>(build_rows) * per_build +
         static_cast<double>(probe_rows) * per_probe;
}

double CostModel::JafarProbePs(const PlatformConfig& p, uint64_t probe_rows,
                               uint64_t filter_kb) {
  double bus_ps = static_cast<double>(p.dram_timing.tck_ps);
  double cycle_ps = static_cast<double>(p.core.clock.period_ps());
  // The probe job streams the key column exactly like a select (same pacing,
  // same ownership hand-off) — reuse that estimate as the base.
  double base = JafarSelectPs(p, probe_rows);
  // The Bloom image re-enters the probe SRAM at every ownership lease;
  // charge one preload per 8-page lease (the runtime's default shape).
  double filter_bursts = static_cast<double>(filter_kb) * 1024.0 / 64.0;
  double leases =
      std::max(1.0, static_cast<double>(probe_rows) * 8.0 / (8.0 * 4096.0));
  double preload_ps = leases * filter_bursts * p.dram_timing.tccd * bus_ps;
  // Host refinement of the candidate bitmap against the exact key set: ~8
  // µops per surviving row at a Bloom-inflated candidate rate (~15%).
  double refine_ps = static_cast<double>(probe_rows) * 0.15 * 8.0 /
                     p.core.issue_width * cycle_ps;
  return base + preload_ps + refine_ps;
}

double CostModel::CpuGroupByPs(const PlatformConfig& p, uint64_t rows) {
  double cycle_ps = static_cast<double>(p.core.clock.period_ps());
  // ~14 µops per row (hash, find-or-insert, accumulate) plus a random
  // hash-table access that misses for the interesting table sizes.
  double miss_ps = static_cast<double>(p.dram_timing.trcd + p.dram_timing.cl +
                                       p.dram_timing.tburst) *
                   static_cast<double>(p.dram_timing.tck_ps) / 4.0;
  double stream_ps = 2.0 * static_cast<double>(p.dram_timing.tccd) *
                     static_cast<double>(p.dram_timing.tck_ps) / 8.0;
  double per_row = 14.0 / p.core.issue_width * cycle_ps + miss_ps + stream_ps;
  return static_cast<double>(rows) * per_row;
}

double CostModel::JafarGroupByPs(const PlatformConfig& p, uint64_t rows) {
  double bus_ps = static_cast<double>(p.dram_timing.tck_ps);
  // Two column streams (keys + values) at the select pacing, plus a bucket
  // SRAM drain (256 buckets x 2 words) per 8-page lease.
  double base = JafarSelectPs(p, 2 * rows);
  double leases =
      std::max(1.0, static_cast<double>(rows) * 8.0 / (8.0 * 4096.0));
  double drain_ps = leases * (256.0 * 2.0 / 8.0) * p.dram_timing.tccd * bus_ps;
  return base + drain_ps;
}

PushdownDecision PushdownPlanner::Decide(uint64_t rows,
                                         double selectivity) const {
  PushdownDecision d;
  const PlatformConfig& p = system_->config();
  d.cpu_estimate_ps = CostModel::CpuSelectPs(p, rows, selectivity);
  d.jafar_estimate_ps = CostModel::JafarSelectPs(p, rows);
  if (rows * 8 < 2 * 4096) {
    d.use_jafar = false;
    d.reason = "column smaller than two pages: invocation overhead dominates";
    return d;
  }
  d.use_jafar = d.jafar_estimate_ps < d.cpu_estimate_ps;
  d.reason = d.use_jafar ? "JAFAR estimate lower" : "CPU estimate lower";
  return d;
}

Status ValidatePushdownResult(const db::PositionList& positions,
                              uint64_t num_rows) {
  // A bitmap-derived result is strictly increasing and in range by
  // construction; anything else means a faulted/partial device result leaked
  // through recovery, and must be rejected (the caller re-runs on the CPU)
  // rather than silently double-counting rows.
  uint64_t prev = 0;
  bool first = true;
  for (uint32_t p : positions) {
    if (p >= num_rows || (!first && p <= prev)) {
      return Status::Internal(
          "pushdown result hygiene: positions not strictly increasing/in "
          "range — discarding partial device result");
    }
    prev = p;
    first = false;
  }
  return Status::OK();
}

Status PredToJafarRange(const db::Pred& pred, int64_t* lo, int64_t* hi) {
  switch (pred.op) {
    case db::Pred::Op::kBetween: *lo = pred.lo; *hi = pred.hi; break;
    case db::Pred::Op::kEq: *lo = pred.lo; *hi = pred.lo; break;
    case db::Pred::Op::kLe: *lo = INT64_MIN; *hi = pred.lo; break;
    case db::Pred::Op::kLt: *lo = INT64_MIN; *hi = pred.lo - 1; break;
    case db::Pred::Op::kGe: *lo = pred.lo; *hi = INT64_MAX; break;
    case db::Pred::Op::kGt: *lo = pred.lo + 1; *hi = INT64_MAX; break;
    default:
      return Status::Unimplemented("predicate not supported by JAFAR");
  }
  return Status::OK();
}

PushdownDecision PushdownPlanner::DecideSemiJoin(uint64_t build_rows,
                                                 uint64_t probe_rows,
                                                 uint64_t filter_kb) const {
  PushdownDecision d;
  const PlatformConfig& p = system_->config();
  d.cpu_estimate_ps = CostModel::CpuSemiJoinPs(p, build_rows, probe_rows);
  d.jafar_estimate_ps = CostModel::JafarProbePs(p, probe_rows, filter_kb);
  if (probe_rows * 8 < 2 * 4096) {
    d.use_jafar = false;
    d.reason = "probe side smaller than two pages: filter preload dominates";
    return d;
  }
  d.use_jafar = d.jafar_estimate_ps < d.cpu_estimate_ps;
  d.reason = d.use_jafar ? "JAFAR estimate lower" : "CPU estimate lower";
  return d;
}

PushdownDecision PushdownPlanner::DecideGroupBy(uint64_t rows) const {
  PushdownDecision d;
  const PlatformConfig& p = system_->config();
  d.cpu_estimate_ps = CostModel::CpuGroupByPs(p, rows);
  d.jafar_estimate_ps = CostModel::JafarGroupByPs(p, rows);
  if (rows * 8 < 2 * 4096) {
    d.use_jafar = false;
    d.reason = "column smaller than two pages: invocation overhead dominates";
    return d;
  }
  d.use_jafar = d.jafar_estimate_ps < d.cpu_estimate_ps;
  d.reason = d.use_jafar ? "JAFAR estimate lower" : "CPU estimate lower";
  return d;
}

void PushdownPlanner::InstallJoin(db::QueryContext* ctx,
                                  db::NdpSemiJoinHook semi_join,
                                  db::NdpGroupByHook group_by,
                                  uint64_t filter_kb) {
  if (semi_join) {
    ctx->ndp_semi_join =
        [this, semi_join, filter_kb](
            const db::Column& build_col, const db::PositionList& build_pos,
            const db::Column& probe_col,
            const db::PositionList& probe_pos) -> Result<db::PositionList> {
      PushdownDecision d =
          DecideSemiJoin(build_pos.size(), probe_pos.size(), filter_kb);
      if (!d.use_jafar) {
        return Status::FailedPrecondition("planner: " + d.reason);
      }
      NDP_ASSIGN_OR_RETURN(
          db::PositionList out,
          semi_join(build_col, build_pos, probe_col, probe_pos));
      NDP_RETURN_NOT_OK(ValidatePushdownResult(out, probe_col.size()));
      return out;
    };
  }
  if (group_by) {
    ctx->ndp_group_by =
        [this, group_by](const db::Column& key_col, const db::Column& val_col)
        -> Result<std::map<int64_t, std::pair<int64_t, int64_t>>> {
      PushdownDecision d = DecideGroupBy(key_col.size());
      if (!d.use_jafar) {
        return Status::FailedPrecondition("planner: " + d.reason);
      }
      NDP_ASSIGN_OR_RETURN(auto groups, group_by(key_col, val_col));
      // Exactness hygiene: every input row lands in exactly one group, so
      // the counts must sum to the column length — anything else means a
      // partial device result leaked through recovery.
      uint64_t counted = 0;
      for (const auto& [key, sc] : groups) {
        counted += static_cast<uint64_t>(sc.second);
      }
      if (counted != key_col.size()) {
        return Status::Internal(
            "pushdown result hygiene: group counts do not cover the column — "
            "discarding partial device result");
      }
      return groups;
    };
  }
}

void PushdownPlanner::Install(db::QueryContext* ctx,
                              double default_selectivity) {
  db::NdpSelectHook raw = system_->MakePushdownHook();
  ctx->ndp_select = [this, raw, default_selectivity](
                        const db::Column& col,
                        const db::Pred& pred) -> Result<db::PositionList> {
    PushdownDecision d = Decide(col.size(), default_selectivity);
    if (!d.use_jafar) {
      return Status::FailedPrecondition("planner: " + d.reason);
    }
    NDP_ASSIGN_OR_RETURN(db::PositionList positions, raw(col, pred));
    NDP_RETURN_NOT_OK(ValidatePushdownResult(positions, col.size()));
    return positions;
  };
}

}  // namespace ndp::core
