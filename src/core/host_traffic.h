// Synthetic host (CPU) memory traffic for runtime experiments: an open-issue
// generator of cache-line requests with seeded-PCG32 exponential
// inter-arrivals, standing in for the co-running CPU workload whose slowdown
// the §3.3 QoS budget bounds. The per-request latency histogram is the
// measurement: p99 latency under a JAFAR runtime quantifies the CPU stall
// the lease controller is supposed to keep inside its budget.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/ingress.h"
#include "dram/controller.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stats_registry.h"

namespace ndp::core {

struct HostTrafficConfig {
  /// Offered load: mean request arrivals per microsecond (Poisson process).
  double reqs_per_us = 50.0;
  /// Fraction of requests that are writes.
  double write_fraction = 0.3;
  /// PCG32 seed; the only randomness in a runtime experiment.
  uint64_t seed = 1;
  /// Back-off before re-attempting a request the controller refused
  /// (MSHR-style backpressure), in picoseconds.
  sim::Tick retry_backoff_ps = 10'000;
};

/// \brief Seeded open-loop cache-line traffic over caller-provided regions.
///
/// Regions must be allocated by the caller (DimmArray::AllocOnDevice or
/// equivalent) so generator writes never clobber column data. Addresses are
/// 64 B aligned — one BL8 burst per request, like a CPU line fill.
class HostTrafficGen {
 public:
  HostTrafficGen(sim::EventQueue* eq, dram::MemoryController* controller,
                 HostTrafficConfig config, const StatsScope& stats = {});
  NDP_DISALLOW_COPY_AND_ASSIGN(HostTrafficGen);

  /// Adds `bytes` at `base` to the address pool (weighted by size).
  void AddRegion(uint64_t base, uint64_t bytes);

  /// Starts the arrival process (requires at least one region).
  void Start();
  /// Stops issuing new requests; in-flight ones still complete.
  void Stop();

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t backpressure_retries() const { return retries_; }
  /// Request completion latency (enqueue attempt to last data beat), ps.
  const Histogram& latency() const { return latency_; }

 private:
  struct Region {
    uint64_t base, lines;  ///< 64 B lines
  };

  void ScheduleNext();
  void Issue();
  void TryEnqueue(uint64_t addr, bool is_write, sim::Tick first_attempt_ps);

  sim::EventQueue* eq_;
  dram::MemoryController* controller_;
  HostTrafficConfig config_;
  Rng rng_;
  std::vector<Region> regions_;
  uint64_t total_lines_ = 0;
  bool running_ = false;

  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t retries_ = 0;
  Histogram latency_{0.0, 2.0e8, 200};
};

/// \brief Client-fleet knobs: the serving-side workload shape.
struct FleetConfig {
  /// Aggregate open-loop arrival rate across all open-loop tenants,
  /// requests per microsecond (split by tenant weight).
  double reqs_per_us = 0.05;
  /// Mean think time between a closed-loop completion and the next request.
  sim::Tick think_ps = 2'000'000;
  /// PCG32 seed; every tenant derives its own stream from it.
  uint64_t seed = 1;
  /// Select predicates are [lo, lo + span - 1] with lo uniform over
  /// [value_lo, value_hi - span].
  int64_t value_lo = 0;
  int64_t value_hi = 1'000'000;
  int64_t span = 50'000;
  /// When false, requests are issued with no deadline (the pre-ingress
  /// control: nothing is ever cancelled, late work completes silently). The
  /// fleet still judges completions against the tenant SLO client-side, so
  /// goodput means "on time" under either mode.
  bool propagate_deadlines = true;
};

/// \brief Seeded open/closed-loop serving clients over a ServingIngress.
///
/// One independent PCG32 stream per tenant, so the issued request sequence
/// (tenants, tables, predicates, arrival ticks) is a pure function of
/// (FleetConfig, TenantSpec list) — the reproducibility tests pin this via
/// issue_digest(). Open-loop tenants arrive Poisson at a weight-proportional
/// share of reqs_per_us and do not slow down when shed (that is what makes
/// overload possible); closed-loop tenants keep a fixed window outstanding
/// with exponential think time, the classic self-throttling client.
class ClientFleet {
 public:
  /// Per-tenant outcome accounting (registered under "<scope>.tenant<i>.").
  struct TenantStats {
    uint64_t issued = 0;
    uint64_t goodput = 0;     ///< completed within the tenant SLO
    uint64_t shed = 0;        ///< rejected: ring/pool/priority/retry-budget
    uint64_t late = 0;        ///< expired, cancelled, or completed past SLO
    uint64_t failed = 0;      ///< terminal NDP failure
    uint64_t mismatches = 0;  ///< oracle disagreements (should stay 0)
    Histogram latency{0.0, 4.0e9, 400};  ///< goodput latency, ps
  };

  ClientFleet(sim::EventQueue* eq, ServingIngress* ingress, FleetConfig config,
              const StatsScope& stats = {});
  NDP_DISALLOW_COPY_AND_ASSIGN(ClientFleet);

  /// Optional per-request ground truth: when set, every goodput completion
  /// is checked against it and disagreements count as mismatches.
  void set_oracle(std::function<uint64_t(const ServingRequest&)> oracle) {
    oracle_ = std::move(oracle);
  }

  /// Starts every tenant's arrival process.
  void Start();
  /// Stops issuing; in-flight requests still reach their terminal outcome.
  void Stop();

  const TenantStats& tenant_stats(uint32_t t) const { return stats_[t]; }
  uint64_t issued() const;
  uint64_t goodput() const;
  uint64_t shed() const;
  uint64_t mismatches() const;
  /// FNV-1a digest over the issued request stream (tenant, table, predicate,
  /// arrival tick) — equal seeds must produce equal digests, any thread
  /// count, any overload response.
  uint64_t issue_digest() const { return issue_digest_; }
  /// Same, over (outcome, completion tick) of every terminal callback.
  uint64_t outcome_digest() const { return outcome_digest_; }

 private:
  void ScheduleOpenArrival(uint32_t tenant);
  void ScheduleThink(uint32_t tenant);
  void IssueOne(uint32_t tenant);
  void OnDone(uint32_t tenant, const ServingResult& res);
  void Mix(uint64_t* digest, uint64_t v);

  sim::EventQueue* eq_;
  ServingIngress* ingress_;
  FleetConfig config_;
  bool running_ = false;
  double open_weight_total_ = 0.0;
  uint64_t issue_seq_ = 0;  ///< round-robins requests over the rings
  uint64_t issue_digest_ = 1469598103934665603ULL;   ///< FNV-1a basis
  uint64_t outcome_digest_ = 1469598103934665603ULL;
  std::function<uint64_t(const ServingRequest&)> oracle_;
  std::vector<Rng> rngs_;          ///< one stream per tenant
  std::vector<TenantStats> stats_; ///< sized at construction, stable
};

}  // namespace ndp::core
