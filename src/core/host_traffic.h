// Synthetic host (CPU) memory traffic for runtime experiments: an open-issue
// generator of cache-line requests with seeded-PCG32 exponential
// inter-arrivals, standing in for the co-running CPU workload whose slowdown
// the §3.3 QoS budget bounds. The per-request latency histogram is the
// measurement: p99 latency under a JAFAR runtime quantifies the CPU stall
// the lease controller is supposed to keep inside its budget.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/controller.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stats_registry.h"

namespace ndp::core {

struct HostTrafficConfig {
  /// Offered load: mean request arrivals per microsecond (Poisson process).
  double reqs_per_us = 50.0;
  /// Fraction of requests that are writes.
  double write_fraction = 0.3;
  /// PCG32 seed; the only randomness in a runtime experiment.
  uint64_t seed = 1;
  /// Back-off before re-attempting a request the controller refused
  /// (MSHR-style backpressure), in picoseconds.
  sim::Tick retry_backoff_ps = 10'000;
};

/// \brief Seeded open-loop cache-line traffic over caller-provided regions.
///
/// Regions must be allocated by the caller (DimmArray::AllocOnDevice or
/// equivalent) so generator writes never clobber column data. Addresses are
/// 64 B aligned — one BL8 burst per request, like a CPU line fill.
class HostTrafficGen {
 public:
  HostTrafficGen(sim::EventQueue* eq, dram::MemoryController* controller,
                 HostTrafficConfig config, const StatsScope& stats = {});
  NDP_DISALLOW_COPY_AND_ASSIGN(HostTrafficGen);

  /// Adds `bytes` at `base` to the address pool (weighted by size).
  void AddRegion(uint64_t base, uint64_t bytes);

  /// Starts the arrival process (requires at least one region).
  void Start();
  /// Stops issuing new requests; in-flight ones still complete.
  void Stop();

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t backpressure_retries() const { return retries_; }
  /// Request completion latency (enqueue attempt to last data beat), ps.
  const Histogram& latency() const { return latency_; }

 private:
  struct Region {
    uint64_t base, lines;  ///< 64 B lines
  };

  void ScheduleNext();
  void Issue();
  void TryEnqueue(uint64_t addr, bool is_write, sim::Tick first_attempt_ps);

  sim::EventQueue* eq_;
  dram::MemoryController* controller_;
  HostTrafficConfig config_;
  Rng rng_;
  std::vector<Region> regions_;
  uint64_t total_lines_ = 0;
  bool running_ = false;

  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t retries_ = 0;
  Histogram latency_{0.0, 2.0e8, 200};
};

}  // namespace ndp::core
