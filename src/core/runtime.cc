#include "core/runtime.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "core/profiling.h"
#include "core/pushdown.h"
#include "core/scheduler.h"
#include "util/logging.h"

namespace ndp::core {

namespace {

constexpr uint64_t kRowsPerPage = 4096 / 8;  ///< int64 rows per 4 KB page

uint64_t RoundDownPages(uint64_t rows) {
  return rows / kRowsPerPage * kRowsPerPage;
}

/// Kinds whose device output is a per-row bitmap merged into JobResult::
/// bitmap (select's match bitmap, probe's candidate bitmap).
bool KindHasBitmap(ndp::core::JobKind kind) {
  return kind == ndp::core::JobKind::kSelect ||
         kind == ndp::core::JobKind::kProbe;
}

/// Strict full-string env parses (the fault_plan discipline: a typo must
/// fail loudly, not silently configure a different experiment).
Status OverlayEnvU64(const char* name, uint64_t* field) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return Status::OK();
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(raw, &end, 10);
  if (*raw == '\0' || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "='" + raw +
                                   "' is not an unsigned integer");
  }
  *field = v;
  return Status::OK();
}

Status OverlayEnvDouble(const char* name, double* field) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return Status::OK();
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (*raw == '\0' || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "='" + raw +
                                   "' is not a number");
  }
  *field = v;
  return Status::OK();
}

}  // namespace

// -- RuntimeConfig ------------------------------------------------------------

Result<RuntimeConfig> RuntimeConfig::FromEnv() {
  RuntimeConfig cfg;
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_RUNTIME_LEASE_MIN", &cfg.lease_min_bus_cycles));
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_RUNTIME_LEASE_MAX", &cfg.lease_max_bus_cycles));
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_RUNTIME_LEASE_INIT", &cfg.lease_init_bus_cycles));
  NDP_RETURN_NOT_OK(OverlayEnvDouble("NDP_RUNTIME_GROW", &cfg.lease_grow));
  NDP_RETURN_NOT_OK(OverlayEnvDouble("NDP_RUNTIME_SHRINK", &cfg.lease_shrink));
  NDP_RETURN_NOT_OK(OverlayEnvDouble("NDP_RUNTIME_ALPHA", &cfg.ewma_alpha));
  NDP_RETURN_NOT_OK(OverlayEnvDouble("NDP_RUNTIME_IDLE_THRESHOLD",
                                     &cfg.idle_busy_threshold));
  NDP_RETURN_NOT_OK(
      OverlayEnvDouble("NDP_RUNTIME_IDLE_FILL", &cfg.idle_fill_factor));
  NDP_RETURN_NOT_OK(OverlayEnvDouble("NDP_RUNTIME_QOS_SLOWDOWN_PCT",
                                     &cfg.qos_max_cpu_slowdown_pct));
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_RUNTIME_QOS_MAX_STALL", &cfg.qos_max_stall_bus_cycles));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_RUNTIME_HOST_WINDOW_MIN",
                                  &cfg.host_window_min_bus_cycles));
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_RUNTIME_DEFER_CYCLES", &cfg.admission_defer_bus_cycles));
  uint64_t max_defers = cfg.admission_max_defers;
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_RUNTIME_MAX_DEFERS", &max_defers));
  cfg.admission_max_defers = static_cast<uint32_t>(max_defers);
  uint64_t steal = cfg.steal_enabled ? 1 : 0;
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_RUNTIME_STEAL", &steal));
  cfg.steal_enabled = steal != 0;
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_RUNTIME_STEAL_MIN_PAGES", &cfg.steal_min_pages));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_RUNTIME_STEAL_OVERHEAD",
                                  &cfg.steal_copy_overhead_bus_cycles));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_JOIN_HASHES", &cfg.join_hashes));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_JOIN_FILTER_KB", &cfg.join_filter_kb));
  uint64_t eta_steal = cfg.join_eta_steal ? 1 : 0;
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_JOIN_ETA_STEAL", &eta_steal));
  cfg.join_eta_steal = eta_steal != 0;
  NDP_RETURN_NOT_OK(
      OverlayEnvDouble("NDP_JOIN_HH_THRESHOLD", &cfg.join_hh_threshold));
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_JOIN_HH_MIN_LEASES", &cfg.join_hh_min_leases));
  NDP_ASSIGN_OR_RETURN(cfg.device_gen,
                       jafar::DeviceGenerationFromEnv(cfg.device_gen));
  NDP_RETURN_NOT_OK(cfg.Validate());
  return cfg;
}

Status RuntimeConfig::Validate() const {
  if (lease_min_bus_cycles == 0 ||
      lease_min_bus_cycles > lease_init_bus_cycles ||
      lease_init_bus_cycles > lease_max_bus_cycles) {
    return Status::InvalidArgument(
        "runtime config: need 0 < lease_min <= lease_init <= lease_max");
  }
  if (!(lease_shrink > 0.0 && lease_shrink < 1.0 && lease_grow > 1.0)) {
    return Status::InvalidArgument(
        "runtime config: need 0 < shrink < 1 < grow");
  }
  if (!(ewma_alpha > 0.0 && ewma_alpha <= 1.0)) {
    return Status::InvalidArgument("runtime config: alpha must be in (0, 1]");
  }
  if (!(qos_max_cpu_slowdown_pct > 0.0 && qos_max_cpu_slowdown_pct <= 100.0)) {
    return Status::InvalidArgument(
        "runtime config: slowdown budget must be in (0, 100] percent");
  }
  if (!(idle_busy_threshold >= 0.0 &&
        idle_busy_threshold < qos_budget_fraction())) {
    return Status::InvalidArgument(
        "runtime config: idle threshold must be below the busy budget");
  }
  if (qos_max_stall_bus_cycles < lease_min_bus_cycles) {
    return Status::InvalidArgument(
        "runtime config: stall bound below the minimum lease");
  }
  if (idle_fill_factor < 0.0 || host_window_min_bus_cycles == 0) {
    return Status::InvalidArgument(
        "runtime config: bad idle_fill_factor / host_window_min");
  }
  if (join_hashes == 0 || join_hashes > 8) {
    return Status::InvalidArgument(
        "runtime config: join_hashes must be in [1, 8]");
  }
  if (join_filter_kb == 0 || (join_filter_kb & (join_filter_kb - 1)) != 0) {
    return Status::InvalidArgument(
        "runtime config: join_filter_kb must be a nonzero power of two");
  }
  if (!(join_hh_threshold >= 1.0)) {
    return Status::InvalidArgument(
        "runtime config: join_hh_threshold must be >= 1");
  }
  if (join_hh_min_leases == 0) {
    return Status::InvalidArgument(
        "runtime config: join_hh_min_leases must be >= 1");
  }
  return Status::OK();
}

// -- LeaseController ----------------------------------------------------------

LeaseController::LeaseController(const RuntimeConfig& cfg) : cfg_(cfg) {
  lease_ = static_cast<double>(
      std::min(cfg_.lease_init_bus_cycles, LeaseCap()));
  lease_ = std::max(lease_, static_cast<double>(cfg_.lease_min_bus_cycles));
}

uint64_t LeaseController::LeaseCap() const {
  return std::min(cfg_.lease_max_bus_cycles, cfg_.qos_max_stall_bus_cycles);
}

void LeaseController::Observe(uint64_t window_cycles, uint64_t busy_cycles,
                              uint64_t requests) {
  if (window_cycles == 0) return;
  double u = std::min(1.0, static_cast<double>(busy_cycles) /
                               static_cast<double>(window_cycles));
  double idle =
      PessimisticIdlePeriodCycles(window_cycles, busy_cycles, requests);
  if (!has_observation_) {
    ewma_busy_ = u;
    ewma_idle_ = idle;
    has_observation_ = true;
  } else {
    ewma_busy_ = cfg_.ewma_alpha * u + (1.0 - cfg_.ewma_alpha) * ewma_busy_;
    ewma_idle_ =
        cfg_.ewma_alpha * idle + (1.0 - cfg_.ewma_alpha) * ewma_idle_;
  }
  double cap = static_cast<double>(LeaseCap());
  double floor = static_cast<double>(cfg_.lease_min_bus_cycles);
  if (ewma_busy_ > cfg_.qos_budget_fraction()) {
    lease_ = std::max(floor, lease_ * cfg_.lease_shrink);
    ++shrinks_;
  } else if (ewma_busy_ < cfg_.idle_busy_threshold) {
    lease_ = std::min(
        cap, std::max(lease_ * cfg_.lease_grow,
                      cfg_.idle_fill_factor * ewma_idle_));
    ++grows_;
  }
  lease_ = std::clamp(lease_, floor, cap);
}

uint64_t LeaseController::NextLeaseBusCycles() const {
  return static_cast<uint64_t>(std::llround(lease_));
}

bool LeaseController::ChannelIdle() const {
  return has_observation_ && ewma_busy_ < cfg_.idle_busy_threshold;
}

bool LeaseController::OverBudget() const {
  return has_observation_ && ewma_busy_ > cfg_.qos_budget_fraction();
}

uint64_t LeaseController::HostWindowBusCycles(uint64_t lease_bus_cycles) const {
  if (ChannelIdle()) return cfg_.host_window_min_bus_cycles;
  double beta = cfg_.qos_budget_fraction();
  if (beta >= 1.0) return cfg_.host_window_min_bus_cycles;
  double w = static_cast<double>(lease_bus_cycles) * (1.0 - beta) / beta;
  return std::max(cfg_.host_window_min_bus_cycles,
                  static_cast<uint64_t>(std::ceil(w)));
}

// -- NdpRuntime internals -----------------------------------------------------

struct NdpRuntime::Job {
  JobId id = 0;
  JobKind kind = JobKind::kSelect;
  JobPriority priority = JobPriority::kBatch;
  jafar::CompareOp op = jafar::CompareOp::kBetween;
  int64_t lo = 0, hi = 0;
  jafar::AggKind agg = jafar::AggKind::kSum;
  uint64_t total_rows = 0;
  uint64_t rows_completed = 0;
  uint64_t matches = 0;
  int64_t agg_value = 0;
  bool agg_first = true;
  uint64_t leases = 0;
  // -- Probe state (kProbe only) ---------------------------------------------
  /// Host-built Bloom image over the build keys; the source of every
  /// per-device copy (EnsureProbeFilter).
  std::vector<uint64_t> filter_image;
  uint64_t filter_words = 0;  ///< filter_image.size(), a power of two
  uint32_t hash_count = 2;
  /// Devices that already hold the image, and where. Lazy: a device pays for
  /// the image only if a chunk of this job actually lands on it.
  std::map<uint32_t, uint64_t> filter_base_by_device;
  // -- Group-by state (kGroupBy only) ----------------------------------------
  /// key -> {aggregate, count}, merged per lease from the device's bucket
  /// scratch (and from host-folded seam rows).
  std::map<int64_t, std::pair<int64_t, int64_t>> groups;
  /// Absolute cancellation time (0 = none): checked at every chunk-boundary
  /// dispatch and again before completion, so an expired job is never
  /// silently completed late.
  sim::Tick deadline_ps = 0;
  /// Chunks created for this job and not yet retired/destroyed. Completion
  /// triggers when the LAST chunk retires — `rows_completed == total_rows`
  /// alone is not enough, because interleaved lease completions can make it
  /// true while a sibling chunk has not merged its bitmap words yet.
  uint64_t chunks_live = 0;
  bool failed = false;
  sim::Tick submitted_ps = 0;
  /// Per-job result bitmap, merged incrementally as chunks retire. Merging
  /// cannot wait until completion: out regions come from the placement and
  /// are shared across jobs, so a later job's chunk on the same lane reuses
  /// (and overwrites) them as soon as this job's chunk has retired there.
  BitVector bitmap;
  JobCallback on_done;
};

struct NdpRuntime::Chunk {
  Job* job = nullptr;
  uint64_t seq = 0;  ///< global submission sequence, the FIFO key
  JobPriority priority = JobPriority::kBatch;
  uint64_t col_base = 0;
  uint64_t out_base = 0;
  uint64_t val_base = 0;     ///< group-by value slice (0 otherwise)
  uint64_t first_row = 0;
  uint64_t rows = 0;
  uint64_t rows_done = 0;    ///< completed-lease prefix
  uint64_t rows_leased = 0;  ///< dispatched prefix (>= rows_done)
};

struct NdpRuntime::Lane {
  enum class State : uint8_t { kIdle, kDeferred, kLeasing, kWaiting, kDead };

  uint32_t index = 0;
  uint32_t device = 0;
  uint32_t channel = 0;
  std::unique_ptr<jafar::Driver> driver;
  std::deque<std::unique_ptr<Chunk>> queue;  ///< (priority, seq) order
  std::unique_ptr<Chunk> active;
  State state = State::kIdle;
  uint32_t defers = 0;

  // Host-window observation bookkeeping.
  bool has_window = false;
  bool sampling_inflight = false;  ///< a SampleChannel round-trip is pending
  sim::Tick window_start_ps = 0;
  double busy_base = 0, req_base = 0;

  uint64_t cur_lease_cycles = 0;
  uint64_t cur_lease_rows = 0;
  uint64_t agg_scratch = 0;  ///< 8-byte partial-result cell, lazily allocated
  uint64_t gb_scratch = 0;   ///< group-by bucket dump region, lazily allocated
  int64_t gb_key_offset = 0;   ///< bucket window base of the in-flight lease
  bool gb_host_seam = false;   ///< lease folded host-side (see DESIGN.md §12)

  // Heavy-hitter detector state: progress rate of this lane's leases.
  double ewma_ps_per_row = 0.0;
  uint64_t rate_leases = 0;    ///< completed leases feeding the EWMA
  sim::Tick lease_start_ps = 0;
  bool hh_flagged = false;
};

// -- NdpRuntime ---------------------------------------------------------------

NdpRuntime::NdpRuntime(DimmArray* array, RuntimeConfig config)
    : array_(array), config_(config), eq_(array->eq()) {
  NDP_CHECK(config_.Validate().ok());
  uint32_t channels = array_->dram().num_channels();
  for (uint32_t c = 0; c < channels; ++c) {
    controllers_.push_back(std::make_unique<LeaseController>(config_));
    std::string prefix = "array.dram.ctrl" + std::to_string(c) + ".";
    busy_paths_rc_.push_back(prefix + "rc_busy_cycles");
    busy_paths_wc_.push_back(prefix + "wc_busy_cycles");
    req_paths_rd_.push_back(prefix + "reads_served");
    req_paths_wr_.push_back(prefix + "writes_served");
  }
  StatsScope scope(array_->mutable_stats(), "array.runtime");
  scope.Counter("jobs_submitted", &counters_.jobs_submitted);
  scope.Counter("jobs_completed", &counters_.jobs_completed);
  scope.Counter("jobs_failed", &counters_.jobs_failed);
  scope.Counter("leases", &counters_.leases);
  scope.Counter("admission_defers", &counters_.admission_defers);
  scope.Counter("steals", &counters_.steals);
  scope.Counter("stolen_pages", &counters_.stolen_pages);
  scope.Counter("lane_failures", &counters_.lane_failures);
  scope.Counter("chunks_reassigned", &counters_.chunks_reassigned);
  scope.Counter("deadline_cancellations", &counters_.deadline_cancellations);
  scope.Counter("hh_flags", &counters_.hh_flags);
  scope.Counter("eta_steals", &counters_.eta_steals);
  for (uint32_t c = 0; c < channels; ++c) {
    StatsScope ch = scope.Sub("ctrl" + std::to_string(c));
    LeaseController* lc = controllers_[c].get();
    ch.Gauge("ewma_busy_fraction",
             std::function<double()>([lc] { return lc->ewma_busy_fraction(); }));
    ch.Gauge("ewma_idle_cycles",
             std::function<double()>([lc] { return lc->ewma_idle_cycles(); }));
    ch.Gauge("lease_bus_cycles", std::function<double()>([lc] {
               return static_cast<double>(lc->NextLeaseBusCycles());
             }));
    ch.Counter("qos_shrinks",
               std::function<uint64_t()>([lc] { return lc->qos_shrinks(); }));
    ch.Counter("qos_grows",
               std::function<uint64_t()>([lc] { return lc->qos_grows(); }));
  }
  for (uint32_t d = 0; d < array_->num_devices(); ++d) {
    auto lane = std::make_unique<Lane>();
    lane->index = d;
    lane->device = d;
    jafar::Device& dev = array_->device(d);
    lane->channel = dev.channel_index();
    lane->driver = std::make_unique<jafar::Driver>(
        &dev, &array_->dram().controller(dev.channel_index()), config_.driver,
        scope.Sub("lane" + std::to_string(d)));
    lanes_.push_back(std::move(lane));
  }
  // Seed each lane's observation window at construction: the first dispatch
  // then sees whatever host traffic ran before the first submission, instead
  // of flying blind until its first inter-lease window (§3.3's estimator is
  // supposed to inform dispatch, not trail it).
  for (auto& lane : lanes_) BeginWindow(*lane);
}

NdpRuntime::~NdpRuntime() = default;

LeaseController& NdpRuntime::controller(uint32_t channel) {
  NDP_CHECK(channel < controllers_.size());
  return *controllers_[channel];
}

uint32_t NdpRuntime::lanes_alive() const {
  uint32_t n = 0;
  for (const auto& lane : lanes_) {
    if (lane->state != Lane::State::kDead) ++n;
  }
  return n;
}

sim::Tick NdpRuntime::BusCyclesToPs(uint64_t cycles) const {
  return cycles * array_->timing().tck_ps;
}

double NdpRuntime::ReadChannelBusyCycles(uint32_t channel) const {
  const StatsRegistry& reg = array_->stats();
  return reg.ReadValue(busy_paths_rc_[channel]) +
         reg.ReadValue(busy_paths_wc_[channel]);
}

double NdpRuntime::ReadChannelRequests(uint32_t channel) const {
  const StatsRegistry& reg = array_->stats();
  return reg.ReadValue(req_paths_rd_[channel]) +
         reg.ReadValue(req_paths_wr_[channel]);
}

// -- Submission ---------------------------------------------------------------

Result<NdpRuntime::JobId> NdpRuntime::SubmitSelect(const PlacedColumn& col,
                                                   int64_t lo, int64_t hi,
                                                   JobPriority priority,
                                                   JobCallback on_done) {
  SubmitOptions opts;
  opts.priority = priority;
  opts.on_done = std::move(on_done);
  return Submit(col, JobKind::kSelect, jafar::CompareOp::kBetween, lo, hi,
                jafar::AggKind::kSum, std::move(opts), /*poke_lanes=*/true);
}

Result<NdpRuntime::JobId> NdpRuntime::SubmitSelectWith(const PlacedColumn& col,
                                                       int64_t lo, int64_t hi,
                                                       SubmitOptions opts) {
  return Submit(col, JobKind::kSelect, jafar::CompareOp::kBetween, lo, hi,
                jafar::AggKind::kSum, std::move(opts), /*poke_lanes=*/true);
}

Result<std::vector<NdpRuntime::JobId>> NdpRuntime::SubmitSelectBurst(
    std::vector<BurstSelect> burst) {
  std::vector<JobId> ids;
  ids.reserve(burst.size());
  for (BurstSelect& b : burst) {
    NDP_CHECK(b.col != nullptr);
    NDP_ASSIGN_OR_RETURN(
        JobId id, Submit(*b.col, JobKind::kSelect, jafar::CompareOp::kBetween,
                         b.lo, b.hi, jafar::AggKind::kSum, std::move(b.opts),
                         /*poke_lanes=*/false));
    ids.push_back(id);
  }
  // One wake-up for the whole burst: every chunk of every request is queued
  // (priority, seq)-ordered before any lane picks its next lease.
  for (auto& lane : lanes_) Poke(*lane);
  return ids;
}

Result<NdpRuntime::JobId> NdpRuntime::SubmitAggregate(const PlacedColumn& col,
                                                      jafar::AggKind kind,
                                                      JobPriority priority,
                                                      JobCallback on_done) {
  SubmitOptions opts;
  opts.priority = priority;
  opts.on_done = std::move(on_done);
  return Submit(col, JobKind::kAggregate, jafar::CompareOp::kBetween, 0, 0,
                kind, std::move(opts), /*poke_lanes=*/true);
}

Result<NdpRuntime::JobId> NdpRuntime::SubmitProbe(
    const PlacedColumn& col, std::vector<uint64_t> filter_image,
    JobPriority priority, JobCallback on_done) {
  if (filter_image.empty() ||
      (filter_image.size() & (filter_image.size() - 1)) != 0) {
    return Status::InvalidArgument(
        "runtime: probe filter image must be a nonzero power-of-two size");
  }
  if (config_.join_hashes != array_->device_config().probe_hashes) {
    // The device's probe timing is the accel schedule of exactly
    // probe_hashes lanes; silently probing with a different count would
    // decouple the functional filter from the modeled datapath.
    return Status::InvalidArgument(
        "runtime: join_hashes does not match the device's probe_hashes");
  }
  SubmitOptions opts;
  opts.priority = priority;
  opts.on_done = std::move(on_done);
  return Submit(col, JobKind::kProbe, jafar::CompareOp::kBetween, 0, 0,
                jafar::AggKind::kSum, std::move(opts), /*poke_lanes=*/true,
                /*vals=*/nullptr, std::move(filter_image));
}

Result<NdpRuntime::JobId> NdpRuntime::SubmitGroupBy(const PlacedColumn& keys,
                                                    const PlacedColumn& vals,
                                                    jafar::AggKind kind,
                                                    JobPriority priority,
                                                    JobCallback on_done) {
  if (keys.total_rows != vals.total_rows ||
      keys.parts.size() != vals.parts.size()) {
    return Status::InvalidArgument(
        "runtime: group-by key and value columns must be placed alike");
  }
  for (size_t i = 0; i < keys.parts.size(); ++i) {
    if (keys.parts[i].device != vals.parts[i].device ||
        keys.parts[i].rows != vals.parts[i].rows) {
      return Status::InvalidArgument(
          "runtime: group-by key and value splits disagree");
    }
  }
  SubmitOptions opts;
  opts.priority = priority;
  opts.on_done = std::move(on_done);
  return Submit(keys, JobKind::kGroupBy, jafar::CompareOp::kBetween, 0, 0,
                kind, std::move(opts), /*poke_lanes=*/true, &vals);
}

Result<NdpRuntime::JobId> NdpRuntime::Submit(const PlacedColumn& col,
                                             JobKind kind, jafar::CompareOp op,
                                             int64_t lo, int64_t hi,
                                             jafar::AggKind agg,
                                             SubmitOptions opts,
                                             bool poke_lanes,
                                             const PlacedColumn* vals,
                                             std::vector<uint64_t> filter_image) {
  if (col.total_rows == 0) {
    return Status::InvalidArgument("runtime: cannot submit an empty column");
  }
  if (lanes_alive() == 0) {
    return Status::FailedPrecondition("runtime: no healthy device lanes");
  }
  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->kind = kind;
  job->priority = opts.priority;
  job->op = op;
  job->lo = lo;
  job->hi = hi;
  job->agg = agg;
  job->total_rows = col.total_rows;
  if (KindHasBitmap(kind)) job->bitmap.Resize(col.total_rows);
  if (kind == JobKind::kProbe) {
    job->filter_words = filter_image.size();
    job->filter_image = std::move(filter_image);
    job->hash_count = static_cast<uint32_t>(config_.join_hashes);
  }
  job->submitted_ps = eq_.Now();
  job->deadline_ps = opts.deadline_ps;
  job->on_done = std::move(opts.on_done);
  Job* j = job.get();
  jobs_[j->id] = std::move(job);
  ++counters_.jobs_submitted;
  ++active_jobs_;

  for (size_t pi = 0; pi < col.parts.size(); ++pi) {
    const DevicePlacement& part = col.parts[pi];
    if (part.rows == 0) continue;
    uint64_t val_base = vals != nullptr ? vals->parts[pi].col_base : 0;
    auto chunk = std::make_unique<Chunk>();
    chunk->job = j;
    chunk->seq = next_chunk_seq_++;
    chunk->priority = j->priority;
    chunk->col_base = part.col_base;
    chunk->out_base = part.out_base;
    chunk->val_base = val_base;
    chunk->first_row = part.first_row;
    chunk->rows = part.rows;
    Lane& lane = *lanes_[part.device];
    if (lane.state == Lane::State::kDead) {
      // The placement's home device already failed: route to the least
      // loaded healthy lane through the reassignment copy path.
      Lane* target = nullptr;
      for (auto& cand : lanes_) {
        if (cand->state == Lane::State::kDead) continue;
        if (target == nullptr || StealableRows(*cand) < StealableRows(*target)) {
          target = cand.get();
        }
      }
      NDP_CHECK(target != nullptr);
      if (!TransplantRows(*target, *j, j->priority, part.col_base, val_base,
                          part.first_row, part.rows)) {
        FailJob(*j, Status::ResourceExhausted(
                        "runtime: no space to reroute placement"));
        return j->id;
      }
      ++counters_.chunks_reassigned;
      continue;
    }
    ++j->chunks_live;
    // Insert without poking: waking lanes mid-loop would let early-poked idle
    // lanes steal from the first part before their own parts even arrive.
    InsertChunk(lane, std::move(chunk));
  }
  // Wake everyone only once the whole submission is in place; chunk-less
  // lanes immediately volunteer as steal targets for it. Burst admission
  // (poke_lanes=false) defers even this to the end of the burst.
  if (poke_lanes) {
    for (auto& lane : lanes_) Poke(*lane);
  }
  return j->id;
}

Result<PlacedColumn*> NdpRuntime::EnsurePlaced(const db::Column& col) {
  auto it = placed_.find(&col);
  if (it != placed_.end()) return &it->second;
  NDP_ASSIGN_OR_RETURN(PlacedColumn placed, array_->PlaceColumn(col));
  auto [ins, ok] = placed_.emplace(&col, std::move(placed));
  NDP_CHECK(ok);
  return &ins->second;
}

// -- Queue / dispatch ---------------------------------------------------------

void NdpRuntime::InsertChunk(Lane& lane, std::unique_ptr<Chunk> chunk) {
  auto pos = std::find_if(
      lane.queue.begin(), lane.queue.end(),
      [&](const std::unique_ptr<Chunk>& c) {
        return std::make_pair(c->priority, c->seq) >
               std::make_pair(chunk->priority, chunk->seq);
      });
  lane.queue.insert(pos, std::move(chunk));
}

void NdpRuntime::EnqueueChunk(Lane& lane, std::unique_ptr<Chunk> chunk) {
  InsertChunk(lane, std::move(chunk));
  Poke(lane);
  // New backlog is a steal opportunity: idle siblings (their own queues
  // drained) would otherwise park forever, since nothing else re-pokes them.
  for (auto& other : lanes_) {
    if (other.get() != &lane) Poke(*other);
  }
}

void NdpRuntime::Poke(Lane& lane) {
  if (lane.state == Lane::State::kIdle && !lane.sampling_inflight) {
    MaybeDispatch(lane);
  }
}

void NdpRuntime::MaybeDispatch(Lane& lane) {
  if (lane.state != Lane::State::kIdle || lane.sampling_inflight) return;
  // Refresh the utilization estimate if the lane has been idle long enough to
  // have accumulated a meaningful window (e.g. first dispatch after a stretch
  // of host-only traffic). Freshly observed windows (OnWindowEnd) are not
  // re-sampled: the elapsed time since is below the minimum window.
  if (lane.has_window &&
      eq_.Now() - lane.window_start_ps >=
          BusCyclesToPs(config_.host_window_min_bus_cycles)) {
    uint32_t li = lane.index;
    ObserveWindowThen(lane, [this, li] { DispatchNow(*lanes_[li]); });
    return;
  }
  DispatchNow(lane);
}

void NdpRuntime::DispatchNow(Lane& lane) {
  if (lane.state != Lane::State::kIdle) return;
  // Drop chunks of jobs that already failed (lane deaths purge queues, but a
  // failure can race an in-flight lease of a sibling chunk), and cancel jobs
  // whose deadline passed while they queued — the chunk boundary is the
  // cancellation point, so an expired job never starts another lease.
  while (!lane.queue.empty()) {
    Job* front_job = lane.queue.front()->job;
    if (front_job->failed) {
      --front_job->chunks_live;
      lane.queue.pop_front();
      continue;
    }
    if (CancelIfExpired(*front_job)) continue;  // FailJob purged the queues
    break;
  }
  if (lane.queue.empty()) {
    TrySteal(lane);
    return;
  }
  LeaseController& lc = *controllers_[lane.channel];
  const Chunk& front = *lane.queue.front();
  if (front.priority == JobPriority::kBatch && lc.OverBudget() &&
      lane.defers < config_.admission_max_defers) {
    // Idle-aware admission: hold background work while the channel runs
    // hotter than the QoS budget, but never indefinitely (defer cap).
    ++lane.defers;
    ++counters_.admission_defers;
    lane.state = Lane::State::kDeferred;
    uint32_t li = lane.index;
    eq_.ScheduleAfter(BusCyclesToPs(config_.admission_defer_bus_cycles),
                      [this, li] {
                        Lane& l = *lanes_[li];
                        if (l.state != Lane::State::kDeferred) return;
                        l.state = Lane::State::kIdle;
                        ObserveWindowThen(
                            l, [this, li] { MaybeDispatch(*lanes_[li]); });
                      });
    return;
  }
  lane.defers = 0;
  StartLease(lane);
}

void NdpRuntime::StartLease(Lane& lane) {
  lane.active = std::move(lane.queue.front());
  lane.queue.pop_front();
  LeaseController& lc = *controllers_[lane.channel];
  lane.cur_lease_cycles = lc.NextLeaseBusCycles();
  uint64_t rows_per_lease = RowsPerLeaseCycles(
      array_->timing(), array_->device_config(), lane.cur_lease_cycles);
  lane.cur_lease_rows =
      std::min(rows_per_lease, lane.active->rows - lane.active->rows_done);
  lane.active->rows_leased = lane.active->rows_done + lane.cur_lease_rows;
  if (::getenv("NDP_RUNTIME_DEBUG")) {
    std::fprintf(stderr, "[lease] t=%llu lane=%u cycles=%llu rows=%llu\n",
                 (unsigned long long)eq_.Now(), lane.index,
                 (unsigned long long)lane.cur_lease_cycles,
                 (unsigned long long)lane.cur_lease_rows);
  }
  lane.state = Lane::State::kLeasing;
  lane.lease_start_ps = eq_.Now();
  lane.gb_host_seam = false;
  ++counters_.leases;
  ++lane.active->job->leases;
  uint32_t li = lane.index;
  uint32_t dev = lane.device;
  // The driver lives on the device's channel partition: the acquire request
  // travels out through the port and its grant travels back, one lookahead
  // hop each way (both immediate in single-wheel mode).
  array_->PostToDevice(dev, [this, li, dev] {
    lanes_[li]->driver->AcquireOwnership([this, li, dev](sim::Tick) {
      array_->PostToHost(dev,
                         [this, li] { OnOwnershipAcquired(*lanes_[li]); });
    });
  });
}

void NdpRuntime::OnOwnershipAcquired(Lane& lane) {
  Chunk& c = *lane.active;
  uint32_t li = lane.index;
  uint32_t dev = lane.device;
  if (c.job->kind == JobKind::kSelect) {
    // Job parameters are computed host-side; the submission itself and the
    // completion's status/row-count extraction run on the channel partition,
    // with only plain values crossing back through the port.
    uint64_t col_addr = c.col_base + c.rows_done * 8;
    uint64_t out_addr = c.out_base + c.rows_done / 8;
    int64_t lo = c.job->lo, hi = c.job->hi;
    uint64_t rows = lane.cur_lease_rows;
    array_->PostToDevice(
        dev, [this, li, dev, col_addr, out_addr, lo, hi, rows] {
          Status st = lanes_[li]->driver->SelectJafar(
              col_addr, lo, hi, out_addr, rows, /*flag_addr=*/0,
              [this, li, dev](const jafar::SelectResult& r) {
                Status s = r.status;
                uint64_t n = r.num_output_rows;
                array_->PostToHost(dev, [this, li, s, n] {
                  OnLeaseDone(*lanes_[li], s, n);
                });
              });
          // Alignment invariants guarantee a valid call; a synchronous
          // rejection is a wiring bug, not a device fault.
          NDP_CHECK_MSG(st.ok(), st.message().c_str());
        });
    return;
  }
  if (c.job->kind == JobKind::kProbe) {
    Result<uint64_t> filter = EnsureProbeFilter(lane, *c.job);
    if (!filter.ok()) {
      OnLeaseDone(lane, filter.status(), 0);
      return;
    }
    jafar::ProbeJob job;
    job.col_base = c.col_base + c.rows_done * 8;
    job.num_rows = lane.cur_lease_rows;
    job.out_base = c.out_base + c.rows_done / 8;
    job.filter_base = filter.value();
    job.filter_words = c.job->filter_words;
    job.hash_count = c.job->hash_count;
    array_->PostToDevice(dev, [this, li, dev, job] {
      Status st = lanes_[li]->driver->ProbeJafar(job, [this, li,
                                                       dev](sim::Tick) {
        Lane& l = *lanes_[li];
        Status cause = Status::OK();
        uint64_t n = 0;
        if (l.driver->registers().Read(jafar::Reg::kStatus) ==
            static_cast<uint64_t>(jafar::DeviceStatus::kError)) {
          Status dev_status = array_->device(l.device).last_job_status();
          cause = dev_status.ok() ? Status::Internal("probe failed")
                                  : dev_status;
        } else {
          n = array_->device(l.device).last_match_count();
        }
        array_->PostToHost(
            dev, [this, li, cause, n] { OnLeaseDone(*lanes_[li], cause, n); });
      });
      NDP_CHECK_MSG(st.ok(), st.message().c_str());
    });
    return;
  }
  if (c.job->kind == JobKind::kGroupBy) {
    // Bucket-window lease shaping (DESIGN.md §12): the device aggregates keys
    // in [key_offset, key_offset + buckets) and silently skips the rest, so
    // exactness requires every dispatched row's key to land in the window.
    // Scan forward from the resume point (host-side, against the backing
    // store — standing in for the zone-map key ranges a real planner keeps)
    // and shrink the lease to the maximal in-window prefix. Clustered keys
    // (TPC-H lineitem by orderkey) keep whole leases; adversarial keys
    // degrade to shorter leases, never to wrong answers.
    const uint32_t buckets = array_->device_config().groupby_buckets;
    auto& store = array_->dram().backing_store();
    uint64_t base = c.col_base + c.rows_done * 8;
    int64_t k0 = static_cast<int64_t>(store.Read64(base));
    uint64_t window = 1;
    while (window < lane.cur_lease_rows) {
      int64_t k = static_cast<int64_t>(store.Read64(base + window * 8));
      if (k < k0 || k - k0 >= static_cast<int64_t>(buckets)) break;
      ++window;
    }
    uint64_t aligned = window & ~uint64_t{7};
    if (aligned == 0) {
      // Ragged seam: fewer than one 64 B burst of rows before the keys leave
      // the window, which the engine's alignment rule cannot express. Fold a
      // whole burst (or the chunk tail) host-side — a full 8 rows, not just
      // the window, so the resume point stays 64 B aligned — and complete
      // the lease without a device job.
      uint64_t seam = std::min<uint64_t>(8, lane.cur_lease_rows);
      for (uint64_t r = 0; r < seam; ++r) {
        int64_t key = static_cast<int64_t>(store.Read64(base + r * 8));
        int64_t val =
            static_cast<int64_t>(store.Read64(c.val_base + (c.rows_done + r) * 8));
        MergeGroup(*c.job, key,
                   c.job->agg == jafar::AggKind::kCount ? 1 : val, 1);
      }
      lane.cur_lease_rows = seam;
      c.rows_leased = c.rows_done + seam;
      lane.gb_host_seam = true;
      OnLeaseDone(lane, Status::OK(), 0);
      return;
    }
    lane.cur_lease_rows = aligned;
    c.rows_leased = c.rows_done + aligned;
    lane.gb_key_offset = k0;
    if (lane.gb_scratch == 0) {
      Result<uint64_t> scratch =
          array_->AllocOnDevice(lane.device, uint64_t{buckets} * 16, 64);
      if (!scratch.ok()) {
        OnLeaseDone(lane, scratch.status(), 0);
        return;
      }
      lane.gb_scratch = scratch.value();
    }
    jafar::GroupByJob job;
    job.key_base = c.col_base + c.rows_done * 8;
    job.val_base = c.val_base + c.rows_done * 8;
    job.num_rows = lane.cur_lease_rows;
    job.kind = c.job->agg;
    job.key_offset = k0;
    job.bitmap_base = 0;
    job.out_base = lane.gb_scratch;
    array_->PostToDevice(dev, [this, li, dev, job] {
      Status st = lanes_[li]->driver->GroupByJafar(job, [this, li,
                                                         dev](sim::Tick) {
        Lane& l = *lanes_[li];
        Status cause = Status::OK();
        if (l.driver->registers().Read(jafar::Reg::kStatus) ==
            static_cast<uint64_t>(jafar::DeviceStatus::kError)) {
          Status dev_status = array_->device(l.device).last_job_status();
          cause = dev_status.ok() ? Status::Internal("group-by failed")
                                  : dev_status;
        }
        array_->PostToHost(
            dev, [this, li, cause] { OnLeaseDone(*lanes_[li], cause, 0); });
      });
      NDP_CHECK_MSG(st.ok(), st.message().c_str());
    });
    return;
  }
  if (lane.agg_scratch == 0) {
    Result<uint64_t> scratch = array_->AllocOnDevice(lane.device, 64, 64);
    if (!scratch.ok()) {
      OnLeaseDone(lane, scratch.status(), 0);
      return;
    }
    lane.agg_scratch = scratch.value();
  }
  jafar::AggregateJob job;
  job.col_base = c.col_base + c.rows_done * 8;
  job.num_rows = lane.cur_lease_rows;
  job.kind = c.job->agg;
  job.bitmap_base = 0;
  job.out_addr = lane.agg_scratch;
  array_->PostToDevice(dev, [this, li, dev, job] {
    Status st = lanes_[li]->driver->AggregateJafar(job, [this, li,
                                                         dev](sim::Tick) {
      // The status register and last-job status live lane-side: read them
      // here and ship only the resolved cause across the port.
      Lane& l = *lanes_[li];
      Status cause = Status::OK();
      if (l.driver->registers().Read(jafar::Reg::kStatus) ==
          static_cast<uint64_t>(jafar::DeviceStatus::kError)) {
        Status dev_status = array_->device(l.device).last_job_status();
        cause = dev_status.ok() ? Status::Internal("aggregate failed")
                                : dev_status;
      }
      array_->PostToHost(
          dev, [this, li, cause] { OnLeaseDone(*lanes_[li], cause, 0); });
    });
    NDP_CHECK_MSG(st.ok(), st.message().c_str());
  });
}

void NdpRuntime::OnLeaseDone(Lane& lane, const Status& status,
                             uint64_t lease_matches) {
  if (!status.ok()) {
    HandleLaneFailure(lane, status);
    return;
  }
  Chunk& c = *lane.active;
  Job& job = *c.job;
  if (!job.failed) {
    if (KindHasBitmap(job.kind)) {
      job.matches += lease_matches;
    } else if (job.kind == JobKind::kGroupBy) {
      if (!lane.gb_host_seam) {
        // Fold the device's bucket dump: count == 0 marks an untouched
        // bucket (its aggregate word is the kind's fold identity, never a
        // real group), so only touched buckets enter the result map.
        auto& store = array_->dram().backing_store();
        const uint32_t buckets = array_->device_config().groupby_buckets;
        for (uint32_t b = 0; b < buckets; ++b) {
          int64_t count = static_cast<int64_t>(
              store.Read64(lane.gb_scratch + uint64_t{b} * 16 + 8));
          if (count == 0) continue;
          int64_t agg = static_cast<int64_t>(
              store.Read64(lane.gb_scratch + uint64_t{b} * 16));
          MergeGroup(job, lane.gb_key_offset + b, agg, count);
        }
      }
    } else {
      int64_t partial = static_cast<int64_t>(
          array_->dram().backing_store().Read64(lane.agg_scratch));
      switch (job.agg) {
        case jafar::AggKind::kSum:
        case jafar::AggKind::kCount:
          job.agg_value += partial;
          break;
        case jafar::AggKind::kMin:
          job.agg_value =
              job.agg_first ? partial : std::min(job.agg_value, partial);
          break;
        case jafar::AggKind::kMax:
          job.agg_value =
              job.agg_first ? partial : std::max(job.agg_value, partial);
          break;
      }
      job.agg_first = false;
    }
    c.rows_done += lane.cur_lease_rows;
    job.rows_completed += lane.cur_lease_rows;
  }
  // Progress-rate EWMA, the heavy-hitter detector's input. Host-folded seam
  // leases are skipped: their handful of rows at ownership-round-trip cost
  // would poison the rate with a meaningless outlier.
  if (lane.cur_lease_rows > 0 && !lane.gb_host_seam) {
    double ps_per_row =
        static_cast<double>(eq_.Now() - lane.lease_start_ps) /
        static_cast<double>(lane.cur_lease_rows);
    lane.ewma_ps_per_row =
        lane.rate_leases == 0
            ? ps_per_row
            : config_.ewma_alpha * ps_per_row +
                  (1.0 - config_.ewma_alpha) * lane.ewma_ps_per_row;
    ++lane.rate_leases;
    UpdateHeavyHitters();
  }
  uint32_t li = lane.index;
  uint32_t dev = lane.device;
  array_->PostToDevice(dev, [this, li, dev] {
    lanes_[li]->driver->ReleaseOwnership([this, li, dev](sim::Tick) {
      array_->PostToHost(dev,
                         [this, li] { OnOwnershipReleased(*lanes_[li]); });
    });
  });
}

void NdpRuntime::OnOwnershipReleased(Lane& lane) {
  BeginWindow(lane);
  Chunk& c = *lane.active;
  if (c.job->failed || c.rows_done == c.rows) {
    RetireChunk(lane);
  } else {
    // Partially processed chunk goes back to the front of the queue (it has
    // the lowest seq of its priority class by construction).
    EnqueueChunk(lane, std::move(lane.active));
  }
  lane.active.reset();
  LeaseController& lc = *controllers_[lane.channel];
  uint64_t window = lc.HostWindowBusCycles(lane.cur_lease_cycles);
  lane.state = Lane::State::kWaiting;
  uint32_t li = lane.index;
  eq_.ScheduleAfter(BusCyclesToPs(window),
                    [this, li] { OnWindowEnd(*lanes_[li]); });
}

void NdpRuntime::OnWindowEnd(Lane& lane) {
  if (lane.state != Lane::State::kWaiting) return;  // lane died meanwhile
  lane.state = Lane::State::kIdle;
  uint32_t li = lane.index;
  ObserveWindowThen(lane, [this, li] { MaybeDispatch(*lanes_[li]); });
}

void NdpRuntime::BeginWindow(Lane& lane) {
  lane.has_window = true;
  lane.sampling_inflight = true;
  uint32_t li = lane.index;
  SampleChannel(lane, [this, li](double busy, double reqs) {
    Lane& l = *lanes_[li];
    l.sampling_inflight = false;
    l.window_start_ps = eq_.Now();
    l.busy_base = busy;
    l.req_base = reqs;
    // A submission may have been poked away while the sample was in flight
    // (Poke skips sampling lanes); catch it up now. In single-wheel mode the
    // sample is synchronous, so this fires with nothing queued and the
    // dispatch path no-ops — same behavior as before the port round-trip.
    if (l.state == Lane::State::kIdle) MaybeDispatch(l);
  });
}

void NdpRuntime::SampleChannel(Lane& lane,
                               std::function<void(double, double)> k) {
  uint32_t ch = lane.channel;
  uint32_t dev = lane.device;
  array_->PostToDevice(dev, [this, ch, dev, k = std::move(k)] {
    double busy = ReadChannelBusyCycles(ch);
    double reqs = ReadChannelRequests(ch);
    array_->PostToHost(dev, [k, busy, reqs] { k(busy, reqs); });
  });
}

void NdpRuntime::ObserveWindowThen(Lane& lane, std::function<void()> k) {
  if (!lane.has_window || lane.sampling_inflight) {
    // Either no window to observe or a sample round-trip is already pending
    // (which will refresh the bases itself): skip, but keep the continuation
    // — deterministically, in every mode.
    k();
    return;
  }
  lane.sampling_inflight = true;
  uint32_t li = lane.index;
  SampleChannel(lane, [this, li, k = std::move(k)](double busy, double reqs) {
    Lane& l = *lanes_[li];
    l.sampling_inflight = false;
    sim::Tick now = eq_.Now();
    uint64_t window_cycles =
        (now - l.window_start_ps) / array_->timing().tck_ps;
    if (window_cycles > 0) {
      uint64_t busy_cycles =
          static_cast<uint64_t>(std::max(0.0, busy - l.busy_base));
      uint64_t requests =
          static_cast<uint64_t>(std::max(0.0, reqs - l.req_base));
      if (::getenv("NDP_RUNTIME_DEBUG")) {
        std::fprintf(
            stderr, "[obs] lane=%u win=%llu busy=%llu reqs=%llu ewma=%f\n",
            l.index, (unsigned long long)window_cycles,
            (unsigned long long)busy_cycles, (unsigned long long)requests,
            controllers_[l.channel]->ewma_busy_fraction());
      }
      controllers_[l.channel]->Observe(window_cycles,
                                      std::min(busy_cycles, window_cycles),
                                      requests);
    }
    l.window_start_ps = now;
    l.busy_base = busy;
    l.req_base = reqs;
    k();
  });
}

// -- Completion ---------------------------------------------------------------

void NdpRuntime::RetireChunk(Lane& lane) { RetireChunkImpl(*lane.active); }

void NdpRuntime::RetireChunkImpl(Chunk& c) {
  Job& job = *c.job;
  --job.chunks_live;
  if (job.failed) return;
  if (KindHasBitmap(job.kind) && c.rows_done > 0) {
    MergeBitmapRange(job, c.first_row, c.rows_done, c.out_base);
  }
  if (job.chunks_live == 0) {
    // Only now is every chunk's bitmap merged; a rows_completed check alone
    // would double-complete under interleaved final leases.
    NDP_CHECK(job.rows_completed == job.total_rows);
    // Never silently complete late: a job whose last lease landed past the
    // deadline reports DeadlineExceeded, not a stale success.
    if (CancelIfExpired(job)) return;
    CompleteJob(job);
  }
}

bool NdpRuntime::CancelIfExpired(Job& job) {
  if (job.failed || job.deadline_ps == 0 || eq_.Now() <= job.deadline_ps) {
    return false;
  }
  ++counters_.deadline_cancellations;
  FailJob(job, Status::DeadlineExceeded(
                   "runtime: job cancelled at chunk boundary past deadline"));
  return true;
}

void NdpRuntime::MergeBitmapRange(Job& job, uint64_t first_row, uint64_t rows,
                                  uint64_t out_base) {
  NDP_CHECK(first_row % 64 == 0);
  uint64_t words = (rows + 63) / 64;
  for (uint64_t w = 0; w < words; ++w) {
    uint64_t value = array_->dram().backing_store().Read64(out_base + w * 8);
    if ((w + 1) * 64 > rows) {
      uint64_t valid = rows - w * 64;
      value &= (valid >= 64) ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
    }
    job.bitmap.SetWord(first_row / 64 + w, value);
  }
}

void NdpRuntime::CompleteJob(Job& job) {
  JobResult result;
  result.job_id = job.id;
  result.kind = job.kind;
  result.status = Status::OK();
  result.matches = job.matches;
  result.agg_value = job.agg_value;
  result.submitted_ps = job.submitted_ps;
  result.completed_ps = eq_.Now();
  result.leases = job.leases;
  if (KindHasBitmap(job.kind)) result.bitmap = std::move(job.bitmap);
  if (job.kind == JobKind::kGroupBy) result.groups = std::move(job.groups);
  ++counters_.jobs_completed;
  --active_jobs_;
  JobCallback cb = std::move(job.on_done);
  auto [it, inserted] = results_.emplace(job.id, std::move(result));
  NDP_CHECK(inserted);
  if (cb) cb(it->second);
}

void NdpRuntime::FailJob(Job& job, const Status& status) {
  if (job.failed) return;
  job.failed = true;
  JobResult result;
  result.job_id = job.id;
  result.kind = job.kind;
  result.status = status;
  result.submitted_ps = job.submitted_ps;
  result.completed_ps = eq_.Now();
  result.leases = job.leases;
  ++counters_.jobs_failed;
  --active_jobs_;
  // Purge the job's queued chunks everywhere; in-flight sibling leases see
  // job.failed at completion and drop their chunk without accounting.
  for (auto& lane : lanes_) {
    auto& q = lane->queue;
    q.erase(std::remove_if(q.begin(), q.end(),
                           [&](const std::unique_ptr<Chunk>& c) {
                             if (c->job != &job) return false;
                             --job.chunks_live;
                             return true;
                           }),
            q.end());
  }
  JobCallback cb = std::move(job.on_done);
  auto [it, inserted] = results_.emplace(job.id, std::move(result));
  NDP_CHECK(inserted);
  if (cb) cb(it->second);
}

// -- Probe / group-by helpers -------------------------------------------------

Result<uint64_t> NdpRuntime::EnsureProbeFilter(Lane& lane, Job& job) {
  auto it = job.filter_base_by_device.find(lane.device);
  if (it != job.filter_base_by_device.end()) return it->second;
  NDP_ASSIGN_OR_RETURN(
      uint64_t base,
      array_->AllocOnDevice(lane.device, job.filter_words * 8, 4096));
  // Functional-only image write, like the steal copy: the modeled cost is
  // the device's timed filter-load read stream at every probe lease (and the
  // extra transplant bursts when a steal carries the image along).
  auto& store = array_->dram().backing_store();
  for (uint64_t w = 0; w < job.filter_words; ++w) {
    store.Write64(base + w * 8, job.filter_image[w]);
  }
  job.filter_base_by_device.emplace(lane.device, base);
  return base;
}

void NdpRuntime::MergeGroup(Job& job, int64_t key, int64_t agg,
                            int64_t count) {
  auto [it, fresh] = job.groups.try_emplace(key, agg, count);
  if (fresh) return;
  switch (job.agg) {
    case jafar::AggKind::kSum:
    case jafar::AggKind::kCount:
      it->second.first += agg;
      break;
    case jafar::AggKind::kMin:
      it->second.first = std::min(it->second.first, agg);
      break;
    case jafar::AggKind::kMax:
      it->second.first = std::max(it->second.first, agg);
      break;
  }
  it->second.second += count;
}

// -- Heavy-hitter detection ----------------------------------------------------

double NdpRuntime::EtaScore(const Lane& lane) const {
  uint64_t rows = StealableRows(lane);
  if (rows == 0) return 0.0;
  double rate;
  if (lane.rate_leases >= config_.join_hh_min_leases) {
    rate = lane.ewma_ps_per_row;
  } else {
    // No trustworthy rate of its own yet: borrow the mean of trusted
    // siblings so a cold lane is neither invisible nor dominant, and fall
    // back to a neutral constant before anyone has finished a lease.
    double sum = 0.0;
    uint32_t n = 0;
    for (const auto& l : lanes_) {
      if (l->state == Lane::State::kDead) continue;
      if (l->rate_leases >= config_.join_hh_min_leases) {
        sum += l->ewma_ps_per_row;
        ++n;
      }
    }
    rate = n > 0 ? sum / n : 1.0;
  }
  return static_cast<double>(rows) * rate;
}

void NdpRuntime::UpdateHeavyHitters() {
  if (!config_.steal_enabled) return;
  double sum = 0.0;
  uint32_t busy = 0;
  for (const auto& lane : lanes_) {
    if (lane->state == Lane::State::kDead) continue;
    double eta = EtaScore(*lane);
    if (eta > 0.0) {
      sum += eta;
      ++busy;
    }
  }
  if (busy < 2) return;  // nothing to compare against (or nobody to steal)
  double mean = sum / busy;
  if (::getenv("NDP_RUNTIME_DEBUG")) {
    std::fprintf(stderr, "[hh] t=%llu busy=%u mean=%.3g etas=",
                 (unsigned long long)eq_.Now(), busy, mean);
    for (const auto& lane : lanes_) {
      std::fprintf(stderr, "%.3g/%llu ", EtaScore(*lane),
                   (unsigned long long)lane->rate_leases);
    }
    std::fprintf(stderr, "\n");
  }
  bool flagged_new = false;
  for (auto& lane : lanes_) {
    if (lane->state == Lane::State::kDead) continue;
    bool hot = lane->rate_leases >= config_.join_hh_min_leases &&
               EtaScore(*lane) > config_.join_hh_threshold * mean;
    if (hot && !lane->hh_flagged) {
      ++counters_.hh_flags;
      flagged_new = true;
    }
    lane->hh_flagged = hot;
  }
  // A fresh heavy hitter is a steal opportunity right now: wake idle
  // siblings instead of leaving them parked until their next natural poke.
  if (flagged_new) {
    for (auto& lane : lanes_) Poke(*lane);
  }
}

// -- Work stealing / lane failure --------------------------------------------

uint64_t NdpRuntime::StealableRows(const Lane& lane) const {
  if (lane.state == Lane::State::kDead) return 0;
  uint64_t rows = 0;
  if (lane.active) rows += lane.active->rows - lane.active->rows_leased;
  for (const auto& c : lane.queue) rows += c->rows - c->rows_done;
  return rows;
}

void NdpRuntime::TrySteal(Lane& thief) {
  if (!config_.steal_enabled || thief.state != Lane::State::kIdle) return;
  // Victim selection. Row count is the classic choice; ETA (rows x observed
  // ps/row) is the skew-aware one — a heavy-hitter lane with few rows of
  // expensive keys outranks a fast lane with more rows. Both are computed so
  // the divergence is visible in the eta_steals counter.
  Lane* rows_victim = nullptr;
  uint64_t max_rows = 0;
  Lane* eta_victim = nullptr;
  double max_eta = 0.0;
  uint64_t eta_victim_rows = 0;
  for (auto& cand : lanes_) {
    if (cand.get() == &thief) continue;
    uint64_t rows = StealableRows(*cand);
    if (rows > max_rows) {
      rows_victim = cand.get();
      max_rows = rows;
    }
    if (config_.join_eta_steal) {
      double eta = EtaScore(*cand);
      if (eta > max_eta) {
        eta_victim = cand.get();
        max_eta = eta;
        eta_victim_rows = rows;
      }
    }
  }
  Lane* victim = config_.join_eta_steal ? eta_victim : rows_victim;
  uint64_t victim_rows = config_.join_eta_steal ? eta_victim_rows : max_rows;
  if (victim == nullptr) return;
  if (config_.join_eta_steal && victim != rows_victim) {
    ++counters_.eta_steals;
  }
  // Steal from the tail of the victim's backlog: its newest queued chunk, or
  // the un-dispatched tail of its active chunk.
  Chunk* source = nullptr;
  uint64_t reserved = 0;  ///< rows of `source` the victim must keep
  if (!victim->queue.empty()) {
    source = victim->queue.back().get();
    reserved = source->rows_done;
  } else if (victim->active) {
    source = victim->active.get();
    reserved = source->rows_leased;
  }
  if (source == nullptr || source->job->failed) return;
  // Quantum-bounded halving: take at most half the backlog, but never more
  // than a quarter-lease of rows per steal. An uncapped half-of-backlog grab
  // lets one thief serialize a giant copy in front of a giant scan while its
  // siblings starve; small quanta keep the copy latency per steal low and
  // re-balance the array several times per lease.
  uint64_t lease_rows =
      RowsPerLeaseCycles(array_->timing(), array_->device_config(),
                         controllers_[thief.channel]->NextLeaseBusCycles());
  uint64_t quantum = std::max<uint64_t>(
      config_.steal_min_pages * kRowsPerPage, lease_rows / 4);
  uint64_t desired =
      std::min({source->rows - reserved, victim_rows / 2, quantum});
  // Keep the victim a page-aligned prefix so both halves' bitmap rows stay
  // word-aligned; the ragged tail (if any) travels with the thief.
  uint64_t keep = std::max(reserved, RoundDownPages(source->rows - desired));
  uint64_t steal_rows = source->rows - keep;
  if (steal_rows < config_.steal_min_pages * kRowsPerPage) return;
  Job& job = *source->job;
  uint64_t src_addr = source->col_base + keep * 8;
  uint64_t val_src_addr =
      job.kind == JobKind::kGroupBy ? source->val_base + keep * 8 : 0;
  uint64_t first_row = source->first_row + keep;
  if (!TransplantRows(thief, job, source->priority, src_addr, val_src_addr,
                      first_row, steal_rows)) {
    return;  // thief rank full — not worth failing anything over
  }
  if (::getenv("NDP_RUNTIME_DEBUG")) {
    std::fprintf(stderr, "[steal] t=%llu thief=%u victim=%u rows=%llu\n",
                 (unsigned long long)eq_.Now(), thief.index, victim->index,
                 (unsigned long long)steal_rows);
  }
  source->rows = keep;
  ++counters_.steals;
  counters_.stolen_pages += (steal_rows + kRowsPerPage - 1) / kRowsPerPage;
  // A queued chunk whose whole remaining tail was stolen will never run
  // again: retire the husk now so its completed prefix (if any) is recorded
  // and it cannot be dispatched as a zero-row lease.
  if (!victim->queue.empty() && victim->queue.back().get() == source &&
      source->rows == source->rows_done) {
    std::unique_ptr<Chunk> husk = std::move(victim->queue.back());
    victim->queue.pop_back();
    RetireChunkImpl(*husk);
  }
}

bool NdpRuntime::TransplantRows(Lane& target, Job& job, JobPriority priority,
                                uint64_t src_addr, uint64_t val_src_addr,
                                uint64_t first_row, uint64_t rows) {
  Result<uint64_t> col_base = array_->AllocOnDevice(target.device, rows * 8);
  if (!col_base.ok()) return false;
  Result<uint64_t> out_base = array_->AllocOnDevice(
      target.device, ((rows + 7) / 8 + 4095) & ~uint64_t{4095});
  if (!out_base.ok()) return false;
  uint64_t val_base = 0;
  if (job.kind == JobKind::kGroupBy) {
    // Group-by chunks travel as (key, value) stream pairs.
    Result<uint64_t> v = array_->AllocOnDevice(target.device, rows * 8);
    if (!v.ok()) return false;
    val_base = v.value();
  }
  auto chunk = std::make_unique<Chunk>();
  chunk->job = &job;
  chunk->seq = next_chunk_seq_++;
  chunk->priority = priority;
  chunk->col_base = col_base.value();
  chunk->out_base = out_base.value();
  chunk->val_base = val_base;
  chunk->first_row = first_row;
  chunk->rows = rows;
  ++job.chunks_live;  // live from creation: the copy latency is part of it
  // Host-mediated DMA: 64 B bursts read from the source rank and written to
  // the target rank through the host. The read and write streams pipeline
  // through the host's buffer (and overlap fully when source and target sit
  // on different channels), so the steady-state rate is one burst per tCCD,
  // plus a fixed software overhead. The copy is functional-only (no DRAM
  // commands), a modeling simplification documented in DESIGN.md §9.
  uint64_t bursts = (rows * 8 + 63) / 64;
  if (job.kind == JobKind::kGroupBy) bursts *= 2;  // key + value streams
  if (job.kind == JobKind::kProbe &&
      job.filter_base_by_device.find(target.device) ==
          job.filter_base_by_device.end()) {
    // The Bloom image rides along when the target has never probed this job
    // (the image itself is laid down by EnsureProbeFilter at dispatch).
    bursts += (job.filter_words * 8 + 63) / 64;
  }
  uint64_t copy_cycles = config_.steal_copy_overhead_bus_cycles +
                         bursts * array_->timing().tccd;
  uint32_t ti = target.index;
  // Shared-pointer hand-off keeps the chunk alive inside the closure.
  std::shared_ptr<Chunk> pending(chunk.release());
  eq_.ScheduleAfter(
      BusCyclesToPs(copy_cycles), [this, ti, pending, src_addr, val_src_addr] {
        std::vector<uint8_t> buf(pending->rows * 8);
        array_->dram().backing_store().Read(src_addr, buf.data(), buf.size());
        array_->dram().backing_store().Write(pending->col_base, buf.data(),
                                             buf.size());
        if (pending->val_base != 0) {
          array_->dram().backing_store().Read(val_src_addr, buf.data(),
                                              buf.size());
          array_->dram().backing_store().Write(pending->val_base, buf.data(),
                                               buf.size());
        }
        Lane& lane = *lanes_[ti];
        auto owned = std::make_unique<Chunk>(*pending);
        if (lane.state == Lane::State::kDead) {
          // The thief died during the copy; bounce the rows once more.
          Lane* next = nullptr;
          for (auto& cand : lanes_) {
            if (cand->state == Lane::State::kDead) continue;
            if (next == nullptr ||
                StealableRows(*cand) < StealableRows(*next)) {
              next = cand.get();
            }
          }
          if (next == nullptr) {
            FailJob(*owned->job,
                    Status::Internal("runtime: all device lanes failed"));
            return;
          }
          ++counters_.chunks_reassigned;
          EnqueueChunk(*next, std::move(owned));
          return;
        }
        EnqueueChunk(lane, std::move(owned));
      });
  return true;
}

void NdpRuntime::HandleLaneFailure(Lane& lane, const Status& status) {
  ++counters_.lane_failures;
  lane.state = Lane::State::kDead;
  // Hand the rank back to the host controller so CPU traffic to it drains
  // (the failed device is idle after the driver's abort path).
  uint32_t dead = lane.index;
  array_->PostToDevice(lane.device, [this, dead] {
    lanes_[dead]->driver->ReleaseOwnership([](sim::Tick) {});
  });

  // Collect the work the lane can no longer do. The failed lease's rows were
  // never counted, so re-running them elsewhere cannot double-count.
  struct Orphan {
    Job* job;
    JobPriority priority;
    uint64_t src_addr, val_src_addr, first_row, rows;
  };
  std::vector<Orphan> orphans;
  auto val_src = [](const Chunk& c) {
    return c.job->kind == JobKind::kGroupBy ? c.val_base + c.rows_done * 8
                                            : uint64_t{0};
  };
  if (lane.active) {
    Chunk& c = *lane.active;
    --c.job->chunks_live;
    if (!c.job->failed) {
      if (KindHasBitmap(c.job->kind) && c.rows_done > 0) {
        // Keep the completed prefix: its bitmap words are already in DRAM.
        MergeBitmapRange(*c.job, c.first_row, c.rows_done, c.out_base);
      }
      if (c.rows_done < c.rows) {
        orphans.push_back(Orphan{c.job, c.priority,
                                 c.col_base + c.rows_done * 8, val_src(c),
                                 c.first_row + c.rows_done,
                                 c.rows - c.rows_done});
      }
    }
    lane.active.reset();
  }
  for (auto& c : lane.queue) {
    --c->job->chunks_live;
    if (c->job->failed) continue;
    orphans.push_back(Orphan{c->job, c->priority, c->col_base + c->rows_done * 8,
                             val_src(*c), c->first_row + c->rows_done,
                             c->rows - c->rows_done});
  }
  lane.queue.clear();

  for (const Orphan& o : orphans) {
    if (o.job->failed) continue;
    Lane* target = nullptr;
    for (auto& cand : lanes_) {
      if (cand->state == Lane::State::kDead) continue;
      if (target == nullptr || StealableRows(*cand) < StealableRows(*target)) {
        target = cand.get();
      }
    }
    if (target == nullptr) {
      FailJob(*o.job, status);
      continue;
    }
    if (!TransplantRows(*target, *o.job, o.priority, o.src_addr,
                        o.val_src_addr, o.first_row, o.rows)) {
      FailJob(*o.job, Status::ResourceExhausted(
                          "runtime: no space to reassign failed lane's pages"));
      continue;
    }
    ++counters_.chunks_reassigned;
  }
}

// -- Waiting / results --------------------------------------------------------

Status NdpRuntime::Drain() {
  if (!array_->RunUntilTrue([this] { return active_jobs_ == 0; })) {
    return Status::Internal("runtime drain stalled: jobs pending, queue dry");
  }
  return Status::OK();
}

Status NdpRuntime::WaitFor(JobId id) {
  if (jobs_.find(id) == jobs_.end()) {
    return Status::NotFound("runtime: unknown job id");
  }
  if (!array_->RunUntilTrue(
          [this, id] { return results_.find(id) != results_.end(); })) {
    return Status::Internal("runtime wait stalled: job pending, queue dry");
  }
  return Status::OK();
}

const JobResult* NdpRuntime::result(JobId id) const {
  auto it = results_.find(id);
  return it == results_.end() ? nullptr : &it->second;
}

// -- Pushdown hooks -----------------------------------------------------------

db::NdpSelectHook NdpRuntime::MakePushdownHook() {
  return [this](const db::Column& col,
                const db::Pred& pred) -> Result<db::PositionList> {
    int64_t lo, hi;
    NDP_RETURN_NOT_OK(PredToJafarRange(pred, &lo, &hi));
    NDP_ASSIGN_OR_RETURN(PlacedColumn * placed, EnsurePlaced(col));
    NDP_ASSIGN_OR_RETURN(
        JobId id, SubmitSelect(*placed, lo, hi, JobPriority::kInteractive));
    NDP_RETURN_NOT_OK(WaitFor(id));
    const JobResult* r = result(id);
    NDP_RETURN_NOT_OK(r->status);
    db::PositionList positions = db::BitmapToPositions(r->bitmap);
    NDP_RETURN_NOT_OK(ValidatePushdownResult(positions, col.size()));
    return positions;
  };
}

db::NdpSelectBatchHook NdpRuntime::MakePushdownBatchHook() {
  return [this](const std::vector<std::pair<const db::Column*, db::Pred>>&
                    selects) -> Result<std::vector<db::PositionList>> {
    std::vector<JobId> ids;
    ids.reserve(selects.size());
    for (const auto& [col, pred] : selects) {
      int64_t lo, hi;
      NDP_RETURN_NOT_OK(PredToJafarRange(pred, &lo, &hi));
      NDP_ASSIGN_OR_RETURN(PlacedColumn * placed, EnsurePlaced(*col));
      NDP_ASSIGN_OR_RETURN(
          JobId id, SubmitSelect(*placed, lo, hi, JobPriority::kInteractive));
      ids.push_back(id);
    }
    std::vector<db::PositionList> lists;
    lists.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      NDP_RETURN_NOT_OK(WaitFor(ids[i]));
      const JobResult* r = result(ids[i]);
      NDP_RETURN_NOT_OK(r->status);
      db::PositionList positions = db::BitmapToPositions(r->bitmap);
      NDP_RETURN_NOT_OK(
          ValidatePushdownResult(positions, selects[i].first->size()));
      lists.push_back(std::move(positions));
    }
    return lists;
  };
}

db::NdpSemiJoinHook NdpRuntime::MakeSemiJoinHook() {
  return [this](const db::Column& build_col, const db::PositionList& build_pos,
                const db::Column& probe_col,
                const db::PositionList& probe_pos)
             -> Result<db::PositionList> {
    // Host side of the JSPIM-style split: build both the Bloom image (what
    // the device probes) and the exact key set (what refines the device's
    // candidates). Sharing BloomBitIndex with the device functional model is
    // what makes "no false negatives" a structural property, not a hope.
    const uint64_t filter_words = config_.join_filter_kb * 1024 / 8;
    std::vector<uint64_t> image(filter_words, 0);
    std::unordered_set<int64_t> build_keys;
    build_keys.reserve(build_pos.size());
    for (uint32_t p : build_pos) {
      int64_t key = build_col[p];
      if (!build_keys.insert(key).second) continue;
      for (uint32_t h = 0; h < config_.join_hashes; ++h) {
        uint64_t bit =
            jafar::BloomBitIndex(static_cast<uint64_t>(key), h, filter_words);
        image[bit / 64] |= uint64_t{1} << (bit % 64);
      }
    }
    NDP_ASSIGN_OR_RETURN(PlacedColumn * placed, EnsurePlaced(probe_col));
    NDP_ASSIGN_OR_RETURN(JobId id, SubmitProbe(*placed, std::move(image),
                                               JobPriority::kInteractive));
    NDP_RETURN_NOT_OK(WaitFor(id));
    const JobResult* r = result(id);
    NDP_RETURN_NOT_OK(r->status);
    // Refinement: candidates are a superset (Bloom collisions), never a
    // subset — a candidate bit may be spurious, a missing bit is definitive.
    db::PositionList out;
    for (uint32_t p : probe_pos) {
      if (r->bitmap.Get(p) && build_keys.count(probe_col[p]) != 0) {
        out.push_back(p);
      }
    }
    return out;
  };
}

db::NdpGroupByHook NdpRuntime::MakeGroupByHook() {
  return [this](const db::Column& key_col, const db::Column& val_col)
             -> Result<std::map<int64_t, std::pair<int64_t, int64_t>>> {
    if (key_col.size() != val_col.size()) {
      return Status::InvalidArgument(
          "runtime: group-by key/value columns differ in length");
    }
    NDP_ASSIGN_OR_RETURN(PlacedColumn * keys, EnsurePlaced(key_col));
    NDP_ASSIGN_OR_RETURN(PlacedColumn * vals, EnsurePlaced(val_col));
    NDP_ASSIGN_OR_RETURN(
        JobId id, SubmitGroupBy(*keys, *vals, jafar::AggKind::kSum,
                                JobPriority::kInteractive));
    NDP_RETURN_NOT_OK(WaitFor(id));
    const JobResult* r = result(id);
    NDP_RETURN_NOT_OK(r->status);
    return r->groups;
  };
}

}  // namespace ndp::core
