// Umbrella header: the public API of the JAFAR-NDP library.
//
// Typical use (see examples/quickstart.cpp):
//
//   ndp::core::SystemModel sys(ndp::core::PlatformConfig::Gem5());
//   ndp::db::Column col = ...;                       // your data
//   auto cpu = sys.RunCpuSelect(col, lo, hi, ndp::db::SelectMode::kBranching);
//   auto ndp = sys.RunJafarSelect(col, lo, hi);
//   double speedup = double(cpu.ValueOrDie().duration_ps) /
//                    double(ndp.ValueOrDie().duration_ps);
#pragma once

#include "core/platform.h"    // IWYU pragma: export
#include "core/profiling.h"   // IWYU pragma: export
#include "core/pushdown.h"    // IWYU pragma: export
#include "core/system.h"      // IWYU pragma: export
#include "db/operators.h"     // IWYU pragma: export
#include "db/table.h"         // IWYU pragma: export
#include "db/tpch.h"          // IWYU pragma: export
#include "db/tpch_queries.h"  // IWYU pragma: export
#include "jafar/driver.h"     // IWYU pragma: export
