#include "core/ingress.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace ndp::core {

namespace {

constexpr sim::Tick kPsPerMs = 1'000'000'000;

/// Strict full-string env parses (the fault_plan discipline: a typo must
/// fail loudly, not silently configure a different experiment).
Status OverlayEnvU64(const char* name, uint64_t* field) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return Status::OK();
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(raw, &end, 10);
  if (*raw == '\0' || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "='" + raw +
                                   "' is not an unsigned integer");
  }
  *field = v;
  return Status::OK();
}

Status OverlayEnvDouble(const char* name, double* field) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return Status::OK();
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (*raw == '\0' || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "='" + raw +
                                   "' is not a number");
  }
  *field = v;
  return Status::OK();
}

}  // namespace

// -- IngressConfig ------------------------------------------------------------

Result<IngressConfig> IngressConfig::FromEnv() {
  IngressConfig cfg;
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_INGRESS_RINGS", &cfg.rings));
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_INGRESS_RING_CAPACITY", &cfg.ring_capacity));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_INGRESS_SLOTS", &cfg.slots));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_INGRESS_BURST", &cfg.burst));
  NDP_RETURN_NOT_OK(
      OverlayEnvU64("NDP_INGRESS_POLL_CYCLES", &cfg.poll_bus_cycles));
  NDP_RETURN_NOT_OK(
      OverlayEnvDouble("NDP_INGRESS_RETRY_TOKENS", &cfg.retry_tokens));
  NDP_RETURN_NOT_OK(OverlayEnvDouble("NDP_INGRESS_RETRY_REFILL_PER_MS",
                                     &cfg.retry_refill_per_ms));
  uint64_t governor = cfg.governor_enabled ? 1 : 0;
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_INGRESS_GOVERNOR", &governor));
  cfg.governor_enabled = governor != 0;
  NDP_RETURN_NOT_OK(
      OverlayEnvDouble("NDP_INGRESS_SHED_THRESHOLD", &cfg.shed_threshold));
  NDP_RETURN_NOT_OK(OverlayEnvDouble("NDP_INGRESS_BROWNOUT_THRESHOLD",
                                     &cfg.brownout_threshold));
  NDP_RETURN_NOT_OK(
      OverlayEnvDouble("NDP_INGRESS_HYSTERESIS", &cfg.governor_hysteresis));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_INGRESS_GOVERNOR_CYCLES",
                                  &cfg.governor_poll_bus_cycles));
  NDP_RETURN_NOT_OK(
      OverlayEnvDouble("NDP_INGRESS_GOVERNOR_ALPHA", &cfg.governor_alpha));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_INGRESS_BROWNOUT_NDP_INFLIGHT",
                                  &cfg.brownout_ndp_inflight));
  NDP_RETURN_NOT_OK(OverlayEnvU64("NDP_INGRESS_CPU_ROW_CYCLES",
                                  &cfg.cpu_scan_bus_cycles_per_row));
  NDP_RETURN_NOT_OK(cfg.Validate());
  return cfg;
}

Status IngressConfig::Validate() const {
  if (rings == 0 || slots == 0 || burst == 0 || poll_bus_cycles == 0) {
    return Status::InvalidArgument(
        "ingress config: rings/slots/burst/poll must be positive");
  }
  if (ring_capacity < 2 || (ring_capacity & (ring_capacity - 1)) != 0) {
    return Status::InvalidArgument(
        "ingress config: ring_capacity must be a power of two >= 2");
  }
  if (slots < rings) {
    return Status::InvalidArgument(
        "ingress config: need at least one slot per ring");
  }
  if (retry_tokens < 0.0 || retry_refill_per_ms < 0.0) {
    return Status::InvalidArgument(
        "ingress config: retry budget must be non-negative");
  }
  if (!(shed_threshold > 0.0 && shed_threshold < brownout_threshold &&
        brownout_threshold <= 1.0)) {
    return Status::InvalidArgument(
        "ingress config: need 0 < shed < brownout <= 1");
  }
  if (!(governor_hysteresis >= 0.0 && governor_hysteresis < shed_threshold)) {
    return Status::InvalidArgument(
        "ingress config: hysteresis must be in [0, shed_threshold)");
  }
  if (!(governor_alpha > 0.0 && governor_alpha <= 1.0)) {
    return Status::InvalidArgument(
        "ingress config: governor alpha must be in (0, 1]");
  }
  if (governor_poll_bus_cycles == 0 || brownout_ndp_inflight == 0 ||
      cpu_scan_bus_cycles_per_row == 0) {
    return Status::InvalidArgument(
        "ingress config: governor cadence / brownout bound / cpu cost must "
        "be positive");
  }
  return Status::OK();
}

const char* OverloadStateToString(OverloadState s) {
  switch (s) {
    case OverloadState::kHealthy: return "healthy";
    case OverloadState::kShedLowPriority: return "shed_low_priority";
    case OverloadState::kBrownout: return "brownout";
  }
  return "unknown";
}

const char* ServeOutcomeToString(ServeOutcome o) {
  switch (o) {
    case ServeOutcome::kOk: return "ok";
    case ServeOutcome::kOkCpuFallback: return "ok_cpu_fallback";
    case ServeOutcome::kShedRingFull: return "shed_ring_full";
    case ServeOutcome::kShedSlotsExhausted: return "shed_slots_exhausted";
    case ServeOutcome::kShedLowPriority: return "shed_low_priority";
    case ServeOutcome::kShedRetryBudget: return "shed_retry_budget";
    case ServeOutcome::kExpiredAtAdmission: return "expired_at_admission";
    case ServeOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case ServeOutcome::kFailed: return "failed";
  }
  return "unknown";
}

// -- ServingIngress -----------------------------------------------------------

ServingIngress::ServingIngress(NdpRuntime* runtime, DimmArray* array,
                               IngressConfig config,
                               std::vector<TenantSpec> tenants)
    : runtime_(runtime),
      array_(array),
      config_(config),
      eq_(array->eq()),
      tenants_(std::move(tenants)) {
  NDP_CHECK(config_.Validate().ok());
  NDP_CHECK(!tenants_.empty());
  pool_.resize(config_.slots);
  free_.reserve(config_.slots);
  // Slot 0 pops first: the freelist is LIFO and filled in reverse.
  for (uint64_t i = config_.slots; i > 0; --i) {
    free_.push_back(static_cast<uint32_t>(i - 1));
  }
  rings_.reserve(config_.rings);
  for (uint64_t r = 0; r < config_.rings; ++r) {
    rings_.push_back(std::make_unique<sim::SpscQueue<uint32_t>>(
        static_cast<size_t>(config_.ring_capacity)));
  }
  buckets_.resize(tenants_.size());
  for (auto& b : buckets_) b.tokens = config_.retry_tokens;
  occupancy_path_ = "array.ingress.slots_in_use";
  StatsScope scope(array_->mutable_stats(), "array.ingress");
  scope.Counter("accepted", &counters_.accepted);
  scope.Counter("bursts", &counters_.bursts);
  scope.Counter("admitted_interactive", &counters_.admitted_interactive);
  scope.Counter("admitted_batch", &counters_.admitted_batch);
  scope.Counter("completed_ndp", &counters_.completed_ndp);
  scope.Counter("completed_cpu", &counters_.completed_cpu);
  scope.Counter("shed_ring_full", &counters_.shed_ring_full);
  scope.Counter("shed_slots_exhausted", &counters_.shed_slots_exhausted);
  scope.Counter("shed_low_priority", &counters_.shed_low_priority);
  scope.Counter("shed_retry_budget", &counters_.shed_retry_budget);
  scope.Counter("expired_at_admission", &counters_.expired_at_admission);
  scope.Counter("deadline_exceeded", &counters_.deadline_exceeded);
  scope.Counter("failed", &counters_.failed);
  scope.Counter("retries", &counters_.retries);
  scope.Counter("governor_transitions", &counters_.governor_transitions);
  scope.Gauge("slots_in_use", std::function<double()>([this] {
                return static_cast<double>(slots_in_use());
              }));
  scope.Gauge("overload_state", std::function<double()>([this] {
                return static_cast<double>(state_);
              }));
  scope.Gauge("occupancy_ewma",
              std::function<double()>([this] { return occupancy_ewma_; }));
}

ServingIngress::~ServingIngress() = default;

uint32_t ServingIngress::AddTable(const db::Column* col,
                                  const PlacedColumn* placed) {
  NDP_CHECK(col != nullptr && placed != nullptr);
  NDP_CHECK(col->size() > 0 && placed->total_rows == col->size());
  tables_.push_back(Table{col, placed});
  return static_cast<uint32_t>(tables_.size() - 1);
}

namespace {
sim::Tick BusCyclesToPsFor(const DimmArray& array, uint64_t cycles) {
  return cycles * array.timing().tck_ps;
}
}  // namespace

bool ServingIngress::Enqueue(uint32_t ring, const ServingRequest& req,
                             ServeCallback done) {
  NDP_CHECK(ring < rings_.size());
  NDP_CHECK(req.tenant < tenants_.size());
  NDP_CHECK(req.table < tables_.size());
  sim::Tick now = eq_.Now();
  if (req.deadline_ps != 0 && now > req.deadline_ps) {
    FinishShed(done, ServeOutcome::kExpiredAtAdmission);
    return false;
  }
  // The governor's door check: under shed or brownout, batch-priority
  // tenants are rejected before they consume a slot.
  if (state_ != OverloadState::kHealthy &&
      tenants_[req.tenant].priority == JobPriority::kBatch) {
    FinishShed(done, ServeOutcome::kShedLowPriority);
    return false;
  }
  // Slot exhaustion is the first, cheapest shed point (mbuf-pool idiom).
  if (free_.empty()) {
    FinishShed(done, ServeOutcome::kShedSlotsExhausted);
    return false;
  }
  uint32_t slot = free_.back();
  free_.pop_back();
  Slot& s = pool_[slot];
  s.req = req;
  s.done = std::move(done);
  s.accepted_ps = now;
  s.cpu_matches = 0;
  s.retries = 0;
  if (!rings_[ring]->TryPush(slot)) {
    ServeCallback cb = std::move(s.done);
    s.done = nullptr;
    free_.push_back(slot);
    FinishShed(cb, ServeOutcome::kShedRingFull);
    return false;
  }
  ++counters_.accepted;
  SchedulePump();
  return true;
}

void ServingIngress::Start() {
  running_ = true;
  SchedulePump();
  ScheduleGovernor();
}

void ServingIngress::Stop() { running_ = false; }

Status ServingIngress::Drain() {
  if (!array_->RunUntilTrue([this] { return slots_in_use() == 0; })) {
    return Status::Internal(
        "ingress drain stalled: requests pending, event queue dry");
  }
  return Status::OK();
}

bool ServingIngress::HasBacklog() const { return slots_in_use() > 0; }

void ServingIngress::SchedulePump() {
  if (pump_scheduled_) return;
  if (!running_ && !HasBacklog()) return;
  pump_scheduled_ = true;
  eq_.ScheduleAfter(BusCyclesToPsFor(*array_, config_.poll_bus_cycles),
                    [this] { Pump(); });
}

void ServingIngress::Pump() {
  pump_scheduled_ = false;
  // Round-robin over the rings, at most `burst` requests each; the whole
  // drain admits as ONE runtime burst (single poke pass).
  std::vector<uint32_t> ndp_batch;  // ndp: bounded-by(NDP_INGRESS_BURST)
  ndp_batch.reserve(config_.burst * config_.rings);
  uint64_t drained = 0;
  for (uint64_t i = 0; i < config_.rings; ++i) {
    uint32_t ring = static_cast<uint32_t>((next_ring_ + i) % config_.rings);
    uint32_t slot = 0;
    for (uint64_t n = 0; n < config_.burst && rings_[ring]->Pop(&slot); ++n) {
      ++drained;
      Admit(slot, &ndp_batch);
    }
  }
  next_ring_ = static_cast<uint32_t>((next_ring_ + 1) % config_.rings);
  if (drained > 0) ++counters_.bursts;
  if (!ndp_batch.empty()) SubmitNdpBurst(ndp_batch);
  SchedulePump();
}

void ServingIngress::Admit(uint32_t slot, std::vector<uint32_t>* ndp_batch) {
  Slot& s = pool_[slot];
  sim::Tick now = eq_.Now();
  // Deadline re-check at admission: the request may have aged out while it
  // sat in the ring. Dying here is free — no lease was spent on it.
  if (s.req.deadline_ps != 0 && now > s.req.deadline_ps) {
    Finish(slot, ServeOutcome::kExpiredAtAdmission, 0);
    return;
  }
  // The governor may have tightened since the door check.
  if (state_ != OverloadState::kHealthy &&
      tenants_[s.req.tenant].priority == JobPriority::kBatch) {
    Finish(slot, ServeOutcome::kShedLowPriority, 0);
    return;
  }
  // Brownout routes the NDP overflow (and everything, once the array has no
  // healthy lanes) onto the bit-identical CPU fallback.
  bool to_cpu = runtime_->lanes_alive() == 0 ||
                (state_ == OverloadState::kBrownout &&
                 ndp_inflight_ >= config_.brownout_ndp_inflight);
  if (to_cpu) {
    SubmitCpu(slot);
    return;
  }
  ++ndp_inflight_;
  ndp_batch->push_back(slot);
}

SubmitOptions ServingIngress::OptionsFor(uint32_t slot) {
  Slot& s = pool_[slot];
  const TenantSpec& tenant = tenants_[s.req.tenant];
  if (tenant.priority == JobPriority::kInteractive) {
    ++counters_.admitted_interactive;
  } else {
    ++counters_.admitted_batch;
  }
  SubmitOptions opts;
  opts.priority = tenant.priority;
  opts.deadline_ps = s.req.deadline_ps;
  opts.on_done = [this, slot](const JobResult& r) { OnNdpDone(slot, r); };
  return opts;
}

void ServingIngress::SubmitNdpBurst(const std::vector<uint32_t>& slot_ids) {
  std::vector<NdpRuntime::BurstSelect> burst;  // ndp: bounded-by(NDP_INGRESS_BURST)
  burst.reserve(slot_ids.size());
  for (uint32_t slot : slot_ids) {
    Slot& s = pool_[slot];
    NdpRuntime::BurstSelect b;
    b.col = tables_[s.req.table].placed;
    b.lo = s.req.lo;
    b.hi = s.req.hi;
    b.opts = OptionsFor(slot);
    burst.push_back(std::move(b));
  }
  Result<std::vector<NdpRuntime::JobId>> ids =
      runtime_->SubmitSelectBurst(std::move(burst));
  // Admission preconditions (live lanes, non-empty tables) are checked before
  // routing to NDP; a rejection here is a wiring bug, not an overload signal.
  NDP_CHECK_MSG(ids.ok(), ids.status().message().c_str());
}

void ServingIngress::SubmitNdpOne(uint32_t slot) {
  Slot& s = pool_[slot];
  Result<NdpRuntime::JobId> id = runtime_->SubmitSelectWith(
      *tables_[s.req.table].placed, s.req.lo, s.req.hi, OptionsFor(slot));
  NDP_CHECK_MSG(id.ok(), id.status().message().c_str());
}

void ServingIngress::SubmitCpu(uint32_t slot) {
  Slot& s = pool_[slot];
  const Table& t = tables_[s.req.table];
  sim::Tick now = eq_.Now();
  uint64_t rows = t.col->size();
  sim::Tick scan_ps = BusCyclesToPsFor(
      *array_, rows * config_.cpu_scan_bus_cycles_per_row);
  sim::Tick start = std::max(now, cpu_busy_until_ps_);
  sim::Tick done_ps = start + scan_ps;
  if (s.req.deadline_ps != 0 && done_ps > s.req.deadline_ps) {
    // Would finish past the deadline: cancel before burning CPU time on it,
    // so an overloaded fallback sheds cheaply instead of queueing late work.
    Finish(slot, ServeOutcome::kDeadlineExceeded, 0);
    return;
  }
  // Bit-identical fallback: the same inclusive [lo, hi] count the JAFAR
  // select path produces, computed over the host copy of the column.
  uint64_t matches = 0;
  for (int64_t v : t.col->values()) {
    if (v >= s.req.lo && v <= s.req.hi) ++matches;
  }
  s.cpu_matches = matches;
  cpu_busy_until_ps_ = done_ps;
  eq_.ScheduleAfter(done_ps - now, [this, slot] {
    Finish(slot, ServeOutcome::kOkCpuFallback, pool_[slot].cpu_matches);
  });
}

void ServingIngress::OnNdpDone(uint32_t slot, const JobResult& r) {
  NDP_CHECK(ndp_inflight_ > 0);
  --ndp_inflight_;
  Slot& s = pool_[slot];
  if (r.status.ok()) {
    Finish(slot, ServeOutcome::kOk, r.matches);
    return;
  }
  if (r.status.code() == StatusCode::kDeadlineExceeded) {
    Finish(slot, ServeOutcome::kDeadlineExceeded, 0);
    return;
  }
  // Fault path. A retry is only worth a token while the deadline still has
  // room; budget exhaustion sheds instead of spinning on a sick device.
  if (s.req.deadline_ps != 0 && eq_.Now() > s.req.deadline_ps) {
    Finish(slot, ServeOutcome::kDeadlineExceeded, 0);
    return;
  }
  if (!TakeRetryToken(s.req.tenant)) {
    Finish(slot, ServeOutcome::kShedRetryBudget, 0);
    return;
  }
  ++counters_.retries;
  ++s.retries;
  if (runtime_->lanes_alive() == 0) {
    SubmitCpu(slot);
    return;
  }
  ++ndp_inflight_;
  SubmitNdpOne(slot);
}

bool ServingIngress::TakeRetryToken(uint32_t tenant) {
  TokenBucket& b = buckets_[tenant];
  sim::Tick now = eq_.Now();
  double refill = static_cast<double>(now - b.last_refill_ps) / kPsPerMs *
                  config_.retry_refill_per_ms;
  b.tokens = std::min(config_.retry_tokens, b.tokens + refill);
  b.last_refill_ps = now;
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

double ServingIngress::retry_tokens(uint32_t t) const {
  const TokenBucket& b = buckets_[t];
  double refill = static_cast<double>(eq_.Now() - b.last_refill_ps) / kPsPerMs *
                  config_.retry_refill_per_ms;
  return std::min(config_.retry_tokens, b.tokens + refill);
}

void ServingIngress::BumpOutcome(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kOk: ++counters_.completed_ndp; break;
    case ServeOutcome::kOkCpuFallback: ++counters_.completed_cpu; break;
    case ServeOutcome::kShedRingFull: ++counters_.shed_ring_full; break;
    case ServeOutcome::kShedSlotsExhausted:
      ++counters_.shed_slots_exhausted;
      break;
    case ServeOutcome::kShedLowPriority: ++counters_.shed_low_priority; break;
    case ServeOutcome::kShedRetryBudget: ++counters_.shed_retry_budget; break;
    case ServeOutcome::kExpiredAtAdmission:
      ++counters_.expired_at_admission;
      break;
    case ServeOutcome::kDeadlineExceeded: ++counters_.deadline_exceeded; break;
    case ServeOutcome::kFailed: ++counters_.failed; break;
  }
}

void ServingIngress::Finish(uint32_t slot, ServeOutcome outcome,
                            uint64_t matches) {
  Slot& s = pool_[slot];
  BumpOutcome(outcome);
  ServingResult res;
  res.outcome = outcome;
  res.matches = matches;
  res.accepted_ps = s.accepted_ps;
  res.completed_ps = eq_.Now();
  ServeCallback done = std::move(s.done);
  s.done = nullptr;
  // Release before the callback: a closed-loop client may immediately
  // Enqueue its next request into the slot we just freed.
  free_.push_back(slot);
  if (done) done(res);
}

void ServingIngress::FinishShed(const ServeCallback& done,
                                ServeOutcome outcome) {
  BumpOutcome(outcome);
  if (done) {
    ServingResult res;
    res.outcome = outcome;
    res.accepted_ps = eq_.Now();
    res.completed_ps = eq_.Now();
    done(res);
  }
}

// -- Overload governor --------------------------------------------------------

void ServingIngress::ScheduleGovernor() {
  if (!config_.governor_enabled || governor_scheduled_) return;
  if (!running_ && !HasBacklog()) return;
  governor_scheduled_ = true;
  eq_.ScheduleAfter(
      BusCyclesToPsFor(*array_, config_.governor_poll_bus_cycles),
      [this] { GovernorTick(); });
}

void ServingIngress::GovernorTick() {
  governor_scheduled_ = false;
  // Driven online from the live stats registry — the same surface every
  // other estimator in this repo reads — not from private shortcuts.
  double occ = array_->stats().ReadValue(occupancy_path_) /
               static_cast<double>(config_.slots);
  occupancy_ewma_ = has_occupancy_
                        ? config_.governor_alpha * occ +
                              (1.0 - config_.governor_alpha) * occupancy_ewma_
                        : occ;
  has_occupancy_ = true;
  double e = occupancy_ewma_;
  double hyst = config_.governor_hysteresis;
  OverloadState next = state_;
  switch (state_) {
    case OverloadState::kHealthy:
      if (e >= config_.brownout_threshold) {
        next = OverloadState::kBrownout;
      } else if (e >= config_.shed_threshold) {
        next = OverloadState::kShedLowPriority;
      }
      break;
    case OverloadState::kShedLowPriority:
      if (e >= config_.brownout_threshold) {
        next = OverloadState::kBrownout;
      } else if (e < config_.shed_threshold - hyst) {
        next = OverloadState::kHealthy;
      }
      break;
    case OverloadState::kBrownout:
      if (e < config_.shed_threshold - hyst) {
        next = OverloadState::kHealthy;
      } else if (e < config_.brownout_threshold - hyst) {
        next = OverloadState::kShedLowPriority;
      }
      break;
  }
  if (next != state_) {
    ++counters_.governor_transitions;
    state_ = next;
  }
  ScheduleGovernor();
}

}  // namespace ndp::core
