#include "core/platform.h"

#include <cstdio>

namespace ndp::core {

PlatformConfig PlatformConfig::Gem5() {
  PlatformConfig p;
  p.name = "gem5-like (Table 1, left): 1 GHz OoO, 64kB L1 / 128kB L2, 2GB DDR3";

  p.core.clock = sim::ClockDomain::FromMHz(1000);
  p.core.rob_entries = 128;
  // A modest 2-wide 1 GHz out-of-order core with a short pipeline: the paper
  // deliberately keeps the simulated system "fairly simple in order to
  // isolate the raw performance improvement possible with JAFAR".
  p.core.issue_width = 2;
  p.core.retire_width = 2;
  p.core.store_buffer_entries = 16;
  p.core.branch.mispredict_penalty_cycles = 2;

  cpu::CacheConfig l1;
  l1.name = "L1";
  l1.size_bytes = 64 * 1024;
  l1.ways = 4;
  l1.hit_latency_cycles = 2;
  l1.mshrs = 8;
  l1.prefetch_degree = 0;
  cpu::CacheConfig l2;
  l2.name = "L2";
  l2.size_bytes = 128 * 1024;
  l2.ways = 8;
  l2.hit_latency_cycles = 12;
  l2.mshrs = 16;
  l2.prefetch_degree = 0;  // "fairly simple" system: no prefetchers
  p.caches = {l1, l2};
  p.frontside_ps = 8000;  // 8 ns LLC-to-controller

  p.dram_timing = dram::DramTiming::DDR3_1600();
  p.dram_org.channels = 1;
  p.dram_org.ranks_per_channel = 1;
  p.dram_org.banks_per_rank = 8;
  p.dram_org.rows_per_bank = 32768;  // 8 banks x 32768 x 8 KB = 2 GB
  p.dram_org.row_size_bytes = 8192;
  p.interleave = dram::InterleaveScheme::kContiguous;

  p.jafar_datapath = accel::DatapathResources{};  // 2 ALUs (paper datapath)
  return p;
}

PlatformConfig PlatformConfig::Xeon() {
  PlatformConfig p;
  p.name =
      "Xeon E7-4820 v2-class (Table 1, right): 2 GHz, 256kB L1 / 2MB L2 / "
      "16MB L3, multi-channel DDR3";

  p.core.clock = sim::ClockDomain::FromMHz(2000);
  p.core.rob_entries = 192;
  p.core.issue_width = 4;
  p.core.retire_width = 4;
  p.core.store_buffer_entries = 32;
  p.core.branch.mispredict_penalty_cycles = 14;

  cpu::CacheConfig l1;
  l1.name = "L1";
  l1.size_bytes = 256 * 1024;
  l1.ways = 8;
  l1.hit_latency_cycles = 4;
  l1.mshrs = 10;
  cpu::CacheConfig l2;
  l2.name = "L2";
  l2.size_bytes = 2 * 1024 * 1024;
  l2.ways = 8;
  l2.hit_latency_cycles = 14;
  l2.mshrs = 20;
  l2.prefetch_degree = 4;  // server-class hardware prefetching
  cpu::CacheConfig l3;
  l3.name = "L3";
  l3.size_bytes = 16 * 1024 * 1024;
  l3.ways = 16;
  l3.hit_latency_cycles = 40;
  l3.mshrs = 32;
  p.caches = {l1, l2, l3};
  p.frontside_ps = 12000;

  p.dram_timing = dram::DramTiming::DDR3_1600();
  // One socket's memory system: the E7-4820 v2 drives four DDR3 channels
  // (the paper samples the per-socket integrated memory controllers).
  p.dram_org.channels = 4;
  p.dram_org.ranks_per_channel = 2;
  p.dram_org.banks_per_rank = 8;
  p.dram_org.rows_per_bank = 32768;  // 16 GB simulated (sparsely backed)
  p.dram_org.row_size_bytes = 8192;
  p.interleave = dram::InterleaveScheme::kChannelBurst;

  p.jafar_datapath = accel::DatapathResources{};
  return p;
}

std::string PlatformConfig::ToString() const {
  char buf[1024];
  uint64_t dram_gb = dram_org.TotalBytes() >> 30;
  std::string caches_str;
  for (const auto& c : caches) {
    char cb[96];
    std::snprintf(cb, sizeof(cb), "%s%s %llu kB %u-way (%u cyc)",
                  caches_str.empty() ? "" : ", ", c.name.c_str(),
                  static_cast<unsigned long long>(c.size_bytes / 1024), c.ways,
                  c.hit_latency_cycles);
    caches_str += cb;
  }
  std::snprintf(
      buf, sizeof(buf),
      "%s\n"
      "  CPU: %.1f GHz, ROB %u, %u-wide issue, mispredict penalty %u cyc\n"
      "  Caches: %s\n"
      "  DRAM: %s, %u channel(s) x %u rank(s), %llu GB, interleave %s\n",
      name.c_str(), core.clock.frequency_ghz(), core.rob_entries,
      core.issue_width, core.branch.mispredict_penalty_cycles,
      caches_str.c_str(), dram_timing.name.c_str(), dram_org.channels,
      dram_org.ranks_per_channel, static_cast<unsigned long long>(dram_gb),
      dram::InterleaveSchemeToString(interleave));
  return buf;
}

}  // namespace ndp::core
