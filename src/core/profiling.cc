#include "core/profiling.h"

namespace ndp::core {

double PessimisticIdlePeriodCycles(uint64_t total_cycles, uint64_t busy_cycles,
                                   uint64_t requests) {
  uint64_t empty = total_cycles > busy_cycles ? total_cycles - busy_cycles : 0;
  return static_cast<double>(empty) /
         static_cast<double>(requests > 0 ? requests : 1);
}

double IdleProfile::EstimatedMeanIdleCycles() const {
  // Per-controller estimate, averaged over controllers that saw traffic —
  // the paper samples each IMC's counters separately.
  double sum = 0;
  int n = 0;
  for (const ChannelProfile& ch : channels) {
    uint64_t requests = ch.reads + ch.writes;
    if (requests == 0) continue;
    sum += PessimisticIdlePeriodCycles(
        total_bus_cycles, ch.rc_busy_cycles + ch.wc_busy_cycles, requests);
    ++n;
  }
  if (n > 0) return sum / n;
  // Aggregate fallback (single-controller systems or hand-built profiles).
  uint64_t requests = reads + writes;
  if (requests == 0) return 0.0;
  return PessimisticIdlePeriodCycles(
      total_bus_cycles, rc_busy_cycles + wc_busy_cycles, requests);
}

Result<IdleProfile> IdlePeriodProfiler::Profile(
    const std::string& label, const std::vector<cpu::TraceEvent>& events,
    uint32_t warm_runs) {
  for (uint32_t w = 0; w < warm_runs; ++w) {
    NDP_RETURN_NOT_OK(
        system_->ReplayTrace(events, /*cold_caches=*/w == 0).status());
  }
  // The replay's registry delta covers exactly the timed window — no counter
  // reset needed, so profiling composes with any surrounding measurement.
  NDP_ASSIGN_OR_RETURN(
      SystemModel::CpuRunResult run,
      system_->ReplayTrace(events, /*cold_caches=*/warm_runs == 0));
  const StatsSnapshot& d = run.counters;

  IdleProfile p;
  p.label = label;
  uint64_t bus_period = system_->config().dram_timing.tck_ps;
  p.total_bus_cycles = run.duration_ps / bus_period;
  uint32_t channels = system_->dram().num_channels();
  double idle_sum = 0;
  uint64_t idle_count = 0;
  for (uint32_t ch = 0; ch < channels; ++ch) {
    std::string prefix = "system.dram.ctrl" + std::to_string(ch) + ".";
    ChannelProfile cp;
    cp.rc_busy_cycles = d.Count(prefix + "rc_busy_cycles");
    cp.wc_busy_cycles = d.Count(prefix + "wc_busy_cycles");
    cp.reads = d.Count(prefix + "reads_served");
    cp.writes = d.Count(prefix + "writes_served");
    p.channels.push_back(cp);
    p.rc_busy_cycles += cp.rc_busy_cycles;
    p.wc_busy_cycles += cp.wc_busy_cycles;
    p.reads += cp.reads;
    p.writes += cp.writes;
    // Exact idle-gap statistics over the window: the histogram's .sum/.count
    // are monotonic, so their deltas give the in-window mean.
    idle_sum += d.Value(prefix + "idle_cycles.sum");
    idle_count += d.Count(prefix + "idle_cycles.count");
  }
  p.measured_mean_idle_cycles =
      idle_count ? idle_sum / static_cast<double>(idle_count) : 0;
  p.counters = run.counters;
  return p;
}

}  // namespace ndp::core
