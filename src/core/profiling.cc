#include "core/profiling.h"

namespace ndp::core {

double IdleProfile::EstimatedMeanIdleCycles() const {
  // Per-controller estimate, averaged over controllers that saw traffic —
  // the paper samples each IMC's counters separately.
  double sum = 0;
  int n = 0;
  for (const ChannelProfile& ch : channels) {
    uint64_t requests = ch.reads + ch.writes;
    if (requests == 0) continue;
    uint64_t busy = ch.rc_busy_cycles + ch.wc_busy_cycles;
    uint64_t empty = total_bus_cycles > busy ? total_bus_cycles - busy : 0;
    sum += static_cast<double>(empty) / static_cast<double>(requests);
    ++n;
  }
  if (n > 0) return sum / n;
  // Aggregate fallback (single-controller systems or hand-built profiles).
  uint64_t requests = reads + writes;
  if (requests == 0) return 0.0;
  uint64_t busy = rc_busy_cycles + wc_busy_cycles;
  uint64_t empty = total_bus_cycles > busy ? total_bus_cycles - busy : 0;
  return static_cast<double>(empty) / static_cast<double>(requests);
}

Result<IdleProfile> IdlePeriodProfiler::Profile(
    const std::string& label, const std::vector<cpu::TraceEvent>& events,
    uint32_t warm_runs) {
  for (uint32_t w = 0; w < warm_runs; ++w) {
    NDP_RETURN_NOT_OK(
        system_->ReplayTrace(events, /*cold_caches=*/w == 0).status());
  }
  system_->dram().ResetCounters();
  sim::Tick start = system_->eq().Now();
  NDP_ASSIGN_OR_RETURN(
      SystemModel::CpuRunResult run,
      system_->ReplayTrace(events, /*cold_caches=*/warm_runs == 0));
  sim::Tick end = system_->eq().Now();

  IdleProfile p;
  p.label = label;
  uint64_t bus_period = system_->config().dram_timing.tck_ps;
  p.total_bus_cycles = (end - start) / bus_period;
  uint32_t channels = system_->dram().num_channels();
  for (uint32_t ch = 0; ch < channels; ++ch) {
    dram::ControllerCounters c = system_->dram().controller(ch).counters();
    ChannelProfile cp;
    cp.rc_busy_cycles = c.read_queue_busy_ticks / bus_period;
    cp.wc_busy_cycles = c.write_queue_busy_ticks / bus_period;
    cp.reads = c.reads_served;
    cp.writes = c.writes_served;
    p.channels.push_back(cp);
    p.rc_busy_cycles += cp.rc_busy_cycles;
    p.wc_busy_cycles += cp.wc_busy_cycles;
    p.reads += cp.reads;
    p.writes += cp.writes;
  }

  // Exact idle-gap statistics (averaged across channels).
  double mean_sum = 0;
  for (uint32_t ch = 0; ch < channels; ++ch) {
    mean_sum +=
        system_->dram().controller(ch).idle_period_histogram().stats().mean();
  }
  p.measured_mean_idle_cycles = channels ? mean_sum / channels : 0;
  (void)run;
  return p;
}

}  // namespace ndp::core
