// Project-wide assertion macros. NDP_CHECK fires in all build types; it guards
// invariants whose violation indicates a bug, not a recoverable condition.
#pragma once

#include <cstdio>
#include <cstdlib>

#define NDP_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "NDP_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define NDP_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "NDP_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define NDP_DCHECK(cond) NDP_CHECK(cond)

#define NDP_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete
