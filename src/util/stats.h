// Lightweight statistics utilities used by performance counters, profilers,
// and the benchmark harnesses: running mean/variance, min/max, and a simple
// fixed-bucket histogram for idle-period distributions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ndp {

/// \brief Welford running mean / variance / extrema accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void Reset() { *this = RunningStats(); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Histogram over [lo, hi) with uniform buckets plus overflow/underflow.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets + 2, 0) {}

  void Add(double x) {
    stats_.Add(x);
    size_t b;
    if (x < lo_) {
      b = 0;
    } else if (x >= hi_) {
      b = counts_.size() - 1;
    } else {
      b = 1 + static_cast<size_t>((x - lo_) / (hi_ - lo_) *
                                  static_cast<double>(counts_.size() - 2));
    }
    ++counts_[b];
  }

  /// Approximate quantile in [0,1] from bucket boundaries.
  double Quantile(double q) const;

  const RunningStats& stats() const { return stats_; }
  uint64_t bucket_count(size_t b) const { return counts_[b]; }
  size_t num_buckets() const { return counts_.size(); }

  /// Multi-line ASCII rendering, for bench output.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<uint64_t> counts_;
  RunningStats stats_;
};

}  // namespace ndp
