// Minimal JSON document model: build, serialize, and parse. Used by the
// stats registry (DumpJson), the bench reporter (BENCH_*.json artifacts),
// and the json_check validation tool. Objects preserve insertion order, so
// emission is deterministic and round-trips byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ndp::json {

/// \brief One JSON value: null, bool, number, string, array, or object.
class Value {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  ///< null
  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.num_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.str_ = std::move(s);
    return v;
  }
  static Value Array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  const std::string& AsString() const { return str_; }

  /// Array elements / object members (members as key-value pairs in
  /// insertion order).
  const std::vector<Value>& items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }
  size_t size() const {
    return kind_ == Kind::kObject ? members_.size() : items_.size();
  }

  /// Object: insert `key` (or replace in place, keeping its position).
  Value& Set(const std::string& key, Value v);
  /// Object: member lookup; nullptr when absent (or not an object).
  const Value* Find(const std::string& key) const;
  /// Array: appends and returns the stored element.
  Value& Append(Value v);

  /// Compact serialization (`indent < 0`), or pretty-printed with `indent`
  /// spaces per level. Strings are escaped per RFC 8259.
  std::string Dump(int indent = -1) const;

  /// Strict recursive-descent parse of a complete JSON text.
  static Result<Value> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;                            ///< kArray
  std::vector<std::pair<std::string, Value>> members_;  ///< kObject
};

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string Escape(std::string_view s);

}  // namespace ndp::json
