// Hierarchical statistics registry (gem5-style dotted paths): every
// simulation component registers its counters, gauges, and histograms under a
// stable path like "system.dram.ctrl0.rc_busy_cycles" at construction time.
//
// Design constraints, in order:
//   1. Free on the hot path. Components keep incrementing the plain uint64_t
//      fields of their existing *Stats structs; the registry only stores
//      pointers (or thunks) to those cells. Registration cost is paid once,
//      at construction.
//   2. Runs never mutate shared counters. Timed regions take a StatsSnapshot
//      before and after; the per-run result is the delta. Nothing calls
//      Reset*() between runs, so nested and repeated runs compose.
//   3. Deterministic output. Walks are in sorted path order, so two identical
//      simulations produce byte-identical dumps.
//
// Lifetime: the registry reads through the registered pointers at snapshot /
// dump time. Owners must keep the backing cells alive for as long as the
// registry is read (SystemModel declares its registry before its components,
// so the components are destroyed first but the registry is never read after).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>

#include "util/json.h"
#include "util/stats.h"
#include "util/status.h"

namespace ndp {

/// \brief Point-in-time capture of every scalar stat in a registry.
///
/// Counters (monotonic) subtract under DeltaSince; gauges (level values like
/// a per-run max or a histogram mean) carry the "after" value through.
class StatsSnapshot {
 public:
  struct Entry {
    double value = 0.0;
    bool monotonic = true;  ///< counter: delta = after - before
  };
  using Map = std::map<std::string, Entry>;

  bool Has(const std::string& path) const { return entries_.count(path) > 0; }
  /// Value at `path`, or `fallback` when absent.
  double Value(const std::string& path, double fallback = 0.0) const {
    auto it = entries_.find(path);
    return it == entries_.end() ? fallback : it->second.value;
  }
  uint64_t Count(const std::string& path) const {
    return static_cast<uint64_t>(Value(path));
  }

  /// Per-run delta: counters are subtracted entry-wise (a path missing from
  /// `before` counts from zero), gauges keep this snapshot's value.
  StatsSnapshot DeltaSince(const StatsSnapshot& before) const;

  /// "path value" lines in sorted path order.
  std::string ToText() const;
  /// Flat JSON object {path: value}, sorted path order.
  json::Value ToJson() const;

  const Map& entries() const { return entries_; }
  Map& mutable_entries() { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  Map entries_;
};

/// \brief The registry: dotted-path name -> stat source.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  // -- Registration (once, at component construction). Rejects empty and
  //    duplicate paths with InvalidArgument / AlreadyExists. ----------------

  /// Monotonic counter backed by a component-owned cell.
  Status RegisterCounter(std::string path, const uint64_t* cell);
  /// Monotonic counter computed on demand (e.g. busy time settled to "now").
  Status RegisterCounter(std::string path, std::function<uint64_t()> fn);
  /// Monotonic accumulator with fractional units (e.g. energy in fJ).
  Status RegisterCounter(std::string path, const double* cell);
  /// Level value: snapshot deltas report the "after" value unchanged.
  Status RegisterGauge(std::string path, const uint64_t* cell);
  Status RegisterGauge(std::string path, std::function<double()> fn);
  /// Histogram: expands to <path>.count/.sum (counters) and
  /// <path>.mean/.p50/.p90/.p99 (gauges) in snapshots and dumps.
  Status RegisterHistogram(std::string path, const Histogram* hist);

  /// Registry-owned counter for dynamically named stats (e.g. per-operator
  /// database counters): creates the cell on first use, returns the same
  /// cell on every later call with the same path. Dies if `path` is already
  /// taken by a non-owned stat.
  uint64_t* OwnedCounter(const std::string& path);

  bool Contains(const std::string& path) const { return stats_.count(path) > 0; }
  size_t size() const { return stats_.size(); }

  // -- Walks ----------------------------------------------------------------

  StatsSnapshot Snapshot() const;
  /// Live read of a single stat by path, without walking the whole registry
  /// (the online scheduling path samples controller counters once per host
  /// window). Histogram sub-paths resolve like snapshot entries:
  /// "<hist>.count/.sum/.mean/.p50/.p90/.p99". Returns `fallback` when the
  /// path names nothing.
  double ReadValue(const std::string& path, double fallback = 0.0) const;
  /// "path value" lines in sorted path order (the DumpStats() body).
  std::string DumpText() const { return Snapshot().ToText(); }
  /// Flat JSON object {path: value}.
  json::Value DumpJson() const { return Snapshot().ToJson(); }

 private:
  struct HistSource {
    const Histogram* hist;
  };
  using Source = std::variant<const uint64_t*, const double*,
                              std::function<uint64_t()>,
                              std::function<double()>, HistSource>;
  struct Stat {
    Source source;
    bool monotonic = true;
  };

  Status Add(std::string path, Stat stat);

  std::map<std::string, Stat> stats_;
  std::map<std::string, std::unique_ptr<uint64_t>> owned_;
};

/// \brief A registry handle carrying a path prefix; components register
/// relative names through it. A default-constructed scope is inert, so every
/// component can be built without a registry (tests, throwaway models).
class StatsScope {
 public:
  StatsScope() = default;
  StatsScope(StatsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  bool active() const { return registry_ != nullptr; }
  StatsRegistry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

  /// Child scope: "<prefix>.<name>".
  StatsScope Sub(std::string_view name) const {
    return StatsScope(registry_, Path(name));
  }
  std::string Path(std::string_view name) const {
    return prefix_.empty() ? std::string(name) : prefix_ + "." + std::string(name);
  }

  // Registration helpers. Component stat names are compile-time constants, so
  // a duplicate means two components were mounted at one path — a wiring bug;
  // these check-fail rather than return a Status every caller would ignore.
  void Counter(std::string_view name, const uint64_t* cell) const;
  void Counter(std::string_view name, std::function<uint64_t()> fn) const;
  void Counter(std::string_view name, const double* cell) const;
  void Gauge(std::string_view name, const uint64_t* cell) const;
  void Gauge(std::string_view name, std::function<double()> fn) const;
  void Histogram(std::string_view name, const ndp::Histogram* hist) const;

 private:
  StatsRegistry* registry_ = nullptr;
  std::string prefix_;
};

}  // namespace ndp
