// Deterministic pseudo-random number generation (PCG32). Every stochastic
// component of the simulator and the data generators draws from a seeded Rng
// so that all experiments are exactly reproducible.
#pragma once

#include <cstdint>

#include "util/macros.h"

namespace ndp {

/// \brief PCG32 generator (O'Neill 2014): small state, good statistical
/// quality, fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1)
      : state_(0), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform integer in [0, bound). Uses Lemire-style rejection to avoid
  /// modulo bias. bound must be > 0.
  uint32_t NextBounded(uint32_t bound) {
    NDP_DCHECK(bound > 0);
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    NDP_DCHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
    uint64_t r = NextU64() % span;  // span <= 2^63, bias negligible for tests
    return lo + static_cast<int64_t>(r);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace ndp
