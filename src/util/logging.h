// Minimal leveled logging to stderr. Simulators log at kDebug/kTrace when
// diagnosing timing issues; default level is kWarn so test output stays clean.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace ndp {

enum class LogLevel : uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style log call; a newline is appended.
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace ndp

#define NDP_LOG_TRACE(...) ::ndp::Logf(::ndp::LogLevel::kTrace, __VA_ARGS__)
#define NDP_LOG_DEBUG(...) ::ndp::Logf(::ndp::LogLevel::kDebug, __VA_ARGS__)
#define NDP_LOG_INFO(...) ::ndp::Logf(::ndp::LogLevel::kInfo, __VA_ARGS__)
#define NDP_LOG_WARN(...) ::ndp::Logf(::ndp::LogLevel::kWarn, __VA_ARGS__)
#define NDP_LOG_ERROR(...) ::ndp::Logf(::ndp::LogLevel::kError, __VA_ARGS__)
