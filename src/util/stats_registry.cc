#include "util/stats_registry.h"

#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace ndp {

StatsSnapshot StatsSnapshot::DeltaSince(const StatsSnapshot& before) const {
  StatsSnapshot delta;
  for (const auto& [path, entry] : entries_) {
    Entry d = entry;
    if (entry.monotonic) {
      auto it = before.entries_.find(path);
      if (it != before.entries_.end()) d.value -= it->second.value;
    }
    delta.entries_.emplace(path, d);
  }
  return delta;
}

std::string StatsSnapshot::ToText() const {
  std::string out;
  char line[192];
  for (const auto& [path, entry] : entries_) {
    double v = entry.value;
    if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
      std::snprintf(line, sizeof(line), "%-48s %lld\n", path.c_str(),
                    static_cast<long long>(v));
    } else {
      std::snprintf(line, sizeof(line), "%-48s %.3f\n", path.c_str(), v);
    }
    out += line;
  }
  return out;
}

json::Value StatsSnapshot::ToJson() const {
  json::Value obj = json::Value::Object();
  for (const auto& [path, entry] : entries_) {
    obj.Set(path, json::Value::Number(entry.value));
  }
  return obj;
}

Status StatsRegistry::Add(std::string path, Stat stat) {
  if (path.empty()) {
    return Status::InvalidArgument("stat path must not be empty");
  }
  auto [it, inserted] = stats_.emplace(std::move(path), std::move(stat));
  if (!inserted) {
    return Status::AlreadyExists("stat path already registered: " + it->first);
  }
  return Status::OK();
}

Status StatsRegistry::RegisterCounter(std::string path, const uint64_t* cell) {
  NDP_CHECK(cell != nullptr);
  return Add(std::move(path), Stat{Source{cell}, /*monotonic=*/true});
}

Status StatsRegistry::RegisterCounter(std::string path,
                                      std::function<uint64_t()> fn) {
  NDP_CHECK(fn != nullptr);
  return Add(std::move(path), Stat{Source{std::move(fn)}, /*monotonic=*/true});
}

Status StatsRegistry::RegisterCounter(std::string path, const double* cell) {
  NDP_CHECK(cell != nullptr);
  return Add(std::move(path), Stat{Source{cell}, /*monotonic=*/true});
}

Status StatsRegistry::RegisterGauge(std::string path, const uint64_t* cell) {
  NDP_CHECK(cell != nullptr);
  return Add(std::move(path), Stat{Source{cell}, /*monotonic=*/false});
}

Status StatsRegistry::RegisterGauge(std::string path,
                                    std::function<double()> fn) {
  NDP_CHECK(fn != nullptr);
  return Add(std::move(path), Stat{Source{std::move(fn)}, /*monotonic=*/false});
}

Status StatsRegistry::RegisterHistogram(std::string path,
                                        const Histogram* hist) {
  NDP_CHECK(hist != nullptr);
  return Add(std::move(path), Stat{Source{HistSource{hist}}, false});
}

uint64_t* StatsRegistry::OwnedCounter(const std::string& path) {
  auto it = owned_.find(path);
  if (it != owned_.end()) return it->second.get();
  auto cell = std::make_unique<uint64_t>(0);
  uint64_t* raw = cell.get();
  NDP_CHECK_MSG(RegisterCounter(path, raw).ok(),
                "OwnedCounter path collides with a registered stat");
  owned_.emplace(path, std::move(cell));
  return raw;
}

StatsSnapshot StatsRegistry::Snapshot() const {
  StatsSnapshot snap;
  auto& out = snap.mutable_entries();
  for (const auto& [path, stat] : stats_) {
    if (const auto* hs = std::get_if<HistSource>(&stat.source)) {
      const RunningStats& rs = hs->hist->stats();
      out[path + ".count"] = {static_cast<double>(rs.count()), true};
      out[path + ".sum"] = {rs.sum(), true};
      out[path + ".mean"] = {rs.mean(), false};
      out[path + ".p50"] = {hs->hist->Quantile(0.50), false};
      out[path + ".p90"] = {hs->hist->Quantile(0.90), false};
      out[path + ".p99"] = {hs->hist->Quantile(0.99), false};
      continue;
    }
    StatsSnapshot::Entry e;
    e.monotonic = stat.monotonic;
    if (const auto* cell = std::get_if<const uint64_t*>(&stat.source)) {
      e.value = static_cast<double>(**cell);
    } else if (const auto* dcell = std::get_if<const double*>(&stat.source)) {
      e.value = **dcell;
    } else if (const auto* ufn =
                   std::get_if<std::function<uint64_t()>>(&stat.source)) {
      e.value = static_cast<double>((*ufn)());
    } else {
      e.value = std::get<std::function<double()>>(stat.source)();
    }
    out[path] = e;
  }
  return snap;
}

double StatsRegistry::ReadValue(const std::string& path,
                                double fallback) const {
  auto eval = [](const Stat& stat) {
    if (const auto* cell = std::get_if<const uint64_t*>(&stat.source)) {
      return static_cast<double>(**cell);
    }
    if (const auto* dcell = std::get_if<const double*>(&stat.source)) {
      return **dcell;
    }
    if (const auto* ufn = std::get_if<std::function<uint64_t()>>(&stat.source)) {
      return static_cast<double>((*ufn)());
    }
    return std::get<std::function<double()>>(stat.source)();
  };
  auto it = stats_.find(path);
  if (it != stats_.end()) {
    if (std::get_if<HistSource>(&it->second.source) != nullptr) {
      return fallback;  // a bare histogram path has no scalar value
    }
    return eval(it->second);
  }
  // "<hist>.<field>": the histogram is registered under the parent path.
  size_t dot = path.rfind('.');
  if (dot == std::string::npos) return fallback;
  auto parent = stats_.find(path.substr(0, dot));
  if (parent == stats_.end()) return fallback;
  const auto* hs = std::get_if<HistSource>(&parent->second.source);
  if (hs == nullptr) return fallback;
  std::string field = path.substr(dot + 1);
  const RunningStats& rs = hs->hist->stats();
  if (field == "count") return static_cast<double>(rs.count());
  if (field == "sum") return rs.sum();
  if (field == "mean") return rs.mean();
  if (field == "p50") return hs->hist->Quantile(0.50);
  if (field == "p90") return hs->hist->Quantile(0.90);
  if (field == "p99") return hs->hist->Quantile(0.99);
  return fallback;
}

void StatsScope::Counter(std::string_view name, const uint64_t* cell) const {
  if (!registry_) return;
  NDP_CHECK(registry_->RegisterCounter(Path(name), cell).ok());
}

void StatsScope::Counter(std::string_view name,
                         std::function<uint64_t()> fn) const {
  if (!registry_) return;
  NDP_CHECK(registry_->RegisterCounter(Path(name), std::move(fn)).ok());
}

void StatsScope::Counter(std::string_view name, const double* cell) const {
  if (!registry_) return;
  NDP_CHECK(registry_->RegisterCounter(Path(name), cell).ok());
}

void StatsScope::Gauge(std::string_view name, const uint64_t* cell) const {
  if (!registry_) return;
  NDP_CHECK(registry_->RegisterGauge(Path(name), cell).ok());
}

void StatsScope::Gauge(std::string_view name,
                       std::function<double()> fn) const {
  if (!registry_) return;
  NDP_CHECK(registry_->RegisterGauge(Path(name), std::move(fn)).ok());
}

void StatsScope::Histogram(std::string_view name,
                           const ndp::Histogram* hist) const {
  if (!registry_) return;
  NDP_CHECK(registry_->RegisterHistogram(Path(name), hist).ok());
}

}  // namespace ndp
