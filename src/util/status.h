// Status and Result<T>: exception-free error handling in the style of
// Arrow/RocksDB. All fallible public APIs in this project return Status or
// Result<T>; exceptions are reserved for programming errors (via JAFAR_CHECK).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ndp {

/// Machine-readable category of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kDeviceBusy,       ///< accelerator is executing another command
  kTimingViolation,  ///< a DRAM command violated the timing rules
  kDeadlineExceeded  ///< work cancelled because its deadline passed
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a message.
///
/// Cheap to return in the OK case (no allocation). Modeled on arrow::Status.
///
/// [[nodiscard]]: silently dropping a Status hides failures (a faulted device
/// job, a rejected command) — every call site must check, propagate, or carry
/// an explicit status waiver comment naming the rule and the reason.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeviceBusy(std::string msg) {
    return Status(StatusCode::kDeviceBusy, std::move(msg));
  }
  static Status TimingViolation(std::string msg) {
    return Status(StatusCode::kTimingViolation, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Modeled on arrow::Result. `ValueOrDie()` aborts on error (test/demo use);
/// production call sites should check `ok()` and use `value()` / `status()`.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : var_(std::move(value)) {}              // NOLINT implicit
  Result(Status status) : var_(std::move(status)) {}       // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  T& value() & { return std::get<T>(var_); }
  const T& value() const& { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  /// Returns the value, aborting the process if this holds an error.
  T& ValueOrDie() &;
  T&& ValueOrDie() &&;

 private:
  std::variant<T, Status> var_;
};

namespace internal {
[[noreturn]] void DieOnErrorStatus(const Status& st);
}  // namespace internal

template <typename T>
T& Result<T>::ValueOrDie() & {
  if (!ok()) internal::DieOnErrorStatus(status());
  return value();
}

template <typename T>
T&& Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnErrorStatus(status());
  return std::move(*this).value();
}

}  // namespace ndp

/// Propagates a non-OK Status from an expression to the caller.
#define NDP_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::ndp::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define NDP_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto NDP_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!NDP_CONCAT_(_res_, __LINE__).ok())         \
    return NDP_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(NDP_CONCAT_(_res_, __LINE__)).value()

#define NDP_CONCAT_(a, b) NDP_CONCAT_IMPL_(a, b)
#define NDP_CONCAT_IMPL_(a, b) a##b

/// Project-conventional alias for NDP_RETURN_NOT_OK, matching the JAFAR_*
/// naming used by the build options and test helpers.
#define JAFAR_RETURN_IF_ERROR(expr) NDP_RETURN_NOT_OK(expr)
