#include "util/stats.h"

#include <cmath>
#include <cstdio>

namespace ndp {

double Histogram::Quantile(double q) const {
  uint64_t total = stats_.count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t cum = 0;
  size_t inner = counts_.size() - 2;
  double width = (hi_ - lo_) / static_cast<double>(inner);
  for (size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum > target) {
      if (b == 0) return lo_;
      if (b == counts_.size() - 1) return hi_;
      return lo_ + static_cast<double>(b - 1) * width + width / 2;
    }
  }
  return hi_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  std::string out;
  size_t inner = counts_.size() - 2;
  double width = (hi_ - lo_) / static_cast<double>(inner);
  char line[256];
  for (size_t b = 0; b < counts_.size(); ++b) {
    double left = (b == 0) ? -INFINITY : lo_ + static_cast<double>(b - 1) * width;
    double right = (b == counts_.size() - 1) ? INFINITY : left + width;
    if (b == 0) left = -INFINITY, right = lo_;
    size_t bar = static_cast<size_t>(static_cast<double>(counts_[b]) /
                                     static_cast<double>(peak) *
                                     static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.1f, %10.1f) %8llu |", left, right,
                  static_cast<unsigned long long>(counts_[b]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace ndp
