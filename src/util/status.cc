#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ndp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeviceBusy: return "DeviceBusy";
    case StatusCode::kTimingViolation: return "TimingViolation";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {
void DieOnErrorStatus(const Status& st) {
  std::fprintf(stderr, "Result::ValueOrDie on error status: %s\n",
               st.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace ndp
