// Dense bit vector used for selection bitmaps. This is the host-side mirror of
// the byte array JAFAR writes its output bitset into (paper §2.2, Figure 2):
// bit i set means row i passed the filter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace ndp {

/// \brief Fixed-size dense bitmap with word-level access and population count.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  /// Reinitializes to num_bits cleared bits.
  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  void Set(size_t i) {
    NDP_DCHECK(i < num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Clear(size_t i) {
    NDP_DCHECK(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void SetTo(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  bool Get(size_t i) const {
    NDP_DCHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Raw 64-bit word (bits beyond size() are zero).
  uint64_t Word(size_t w) const {
    NDP_DCHECK(w < words_.size());
    return words_[w];
  }

  /// Overwrites word w. Caller must keep tail bits beyond size() zero.
  void SetWord(size_t w, uint64_t value) {
    NDP_DCHECK(w < words_.size());
    words_[w] = value;
  }

  /// Merges `value` into word w under `mask`: only bits set in mask are
  /// written. This is the masked write-back JAFAR performs when column data is
  /// interleaved across DIMMs (paper §2.2, "Handling Data Interleaving").
  void MergeWord(size_t w, uint64_t value, uint64_t mask) {
    NDP_DCHECK(w < words_.size());
    words_[w] = (words_[w] & ~mask) | (value & mask);
  }

  /// Number of set bits.
  size_t CountOnes() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// Appends the positions of all set bits to `out`.
  void AppendSetPositions(std::vector<uint32_t>* out) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(w));
        out->push_back(static_cast<uint32_t>(wi * 64 + bit));
        w &= w - 1;
      }
    }
  }

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// View of the underlying bytes, as JAFAR's out_buf exposes them.
  const uint8_t* bytes() const {
    return reinterpret_cast<const uint8_t*>(words_.data());
  }
  size_t num_bytes() const { return words_.size() * 8; }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ndp
