#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/macros.h"

namespace ndp::json {

Value& Value::Set(const std::string& key, Value v) {
  NDP_CHECK(kind_ == Kind::kObject);
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Value& Value::Append(Value v) {
  NDP_CHECK(kind_ == Kind::kArray);
  items_.push_back(std::move(v));
  return items_.back();
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; emit null like most writers
    *out += "null";
    return;
  }
  // Counters and sizes are integral; print them without an exponent so the
  // artifacts stay grep-able and diff-friendly.
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && std::fabs(d) < kExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void Indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: *out += "null"; return;
    case Kind::kBool: *out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: AppendNumber(out, num_); return;
    case Kind::kString:
      out->push_back('"');
      *out += Escape(str_);
      out->push_back('"');
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out->push_back(',');
        if (indent >= 0) Indent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out->push_back(',');
        if (indent >= 0) Indent(out, indent, depth + 1);
        out->push_back('"');
        *out += Escape(members_[i].first);
        *out += indent >= 0 ? "\": " : "\":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWs();
    NDP_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        NDP_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::Str(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Value::Bool(true);
        return Err("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Value::Bool(false);
        return Err("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Value::Null();
        return Err("invalid literal");
      default: return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    NDP_CHECK(Consume('{'));
    Value obj = Value::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      NDP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      NDP_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      obj.Set(key, std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray(int depth) {
    NDP_CHECK(Consume('['));
    Value arr = Value::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      NDP_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    NDP_CHECK(Consume('"'));
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) return Err("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          NDP_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Combine surrogate pairs into one code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!ConsumeWord("\\u")) return Err("unpaired high surrogate");
            NDP_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Err("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("unpaired low surrogate");
          }
          AppendUtf8(&out, cp);
          break;
        }
        default: return Err("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Err("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    size_t int_digits = digits();
    if (int_digits == 0) return Err("invalid number");
    // JSON forbids leading zeros on multi-digit integers.
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return Err("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) return Err("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) return Err("digits required in exponent");
    }
    std::string num(text_.substr(start, pos_ - start));
    return Value::Number(std::strtod(num.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Value::Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace ndp::json
